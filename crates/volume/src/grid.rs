//! Rectilinear point grids of scalar samples.
//!
//! A [`RectGrid`] holds one scalar field (one chemical species at one
//! timestep) sampled at `nx × ny × nz` grid points. Cells (voxels) sit
//! between points: a grid with `n` points per axis has `n - 1` cells per
//! axis. Storage is x-fastest row-major, matching the order the synthetic
//! generator writes and the marching-cubes scan reads.

use serde::{Deserialize, Serialize};

/// Grid point dimensions `(nx, ny, nz)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dims {
    /// Points along x.
    pub nx: u32,
    /// Points along y.
    pub ny: u32,
    /// Points along z.
    pub nz: u32,
}

impl Dims {
    /// Construct dimensions; every axis must have at least 2 points (one
    /// cell).
    pub fn new(nx: u32, ny: u32, nz: u32) -> Self {
        Dims { nx, ny, nz }
    }

    /// Total number of grid points.
    pub fn points(&self) -> u64 {
        self.nx as u64 * self.ny as u64 * self.nz as u64
    }

    /// Total number of cells (voxels).
    pub fn cells(&self) -> u64 {
        (self.nx.saturating_sub(1)) as u64
            * (self.ny.saturating_sub(1)) as u64
            * (self.nz.saturating_sub(1)) as u64
    }

    /// Linear index of point `(x, y, z)`, x-fastest.
    #[inline]
    pub fn index(&self, x: u32, y: u32, z: u32) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (z as usize * self.ny as usize + y as usize) * self.nx as usize + x as usize
    }

    /// Bytes of an f32 field over this grid.
    pub fn byte_size(&self) -> u64 {
        self.points() * 4
    }
}

/// A scalar field over a rectilinear grid of points.
#[derive(Debug, Clone, PartialEq)]
pub struct RectGrid {
    /// Point dimensions.
    pub dims: Dims,
    /// Samples, x-fastest row-major; length = `dims.points()`.
    pub data: Vec<f32>,
}

impl RectGrid {
    /// A grid filled with `value`.
    pub fn filled(dims: Dims, value: f32) -> Self {
        RectGrid {
            dims,
            data: vec![value; dims.points() as usize],
        }
    }

    /// Build a grid by evaluating `f(x, y, z)` at every point.
    pub fn from_fn(dims: Dims, mut f: impl FnMut(u32, u32, u32) -> f32) -> Self {
        let mut data = Vec::with_capacity(dims.points() as usize);
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                for x in 0..dims.nx {
                    data.push(f(x, y, z));
                }
            }
        }
        RectGrid { dims, data }
    }

    /// Sample at point `(x, y, z)`.
    #[inline]
    pub fn at(&self, x: u32, y: u32, z: u32) -> f32 {
        self.data[self.dims.index(x, y, z)]
    }

    /// Mutable sample at point `(x, y, z)`.
    #[inline]
    pub fn at_mut(&mut self, x: u32, y: u32, z: u32) -> &mut f32 {
        let i = self.dims.index(x, y, z);
        &mut self.data[i]
    }

    /// Extract the sub-grid of points `[x0, x0+sub.nx) × [y0, ...) × ...`.
    /// Panics if the box exceeds the grid bounds.
    pub fn extract(&self, x0: u32, y0: u32, z0: u32, sub: Dims) -> RectGrid {
        assert!(x0 + sub.nx <= self.dims.nx, "x range out of bounds");
        assert!(y0 + sub.ny <= self.dims.ny, "y range out of bounds");
        assert!(z0 + sub.nz <= self.dims.nz, "z range out of bounds");
        let mut data = Vec::with_capacity(sub.points() as usize);
        for z in z0..z0 + sub.nz {
            for y in y0..y0 + sub.ny {
                let row0 = self.dims.index(x0, y, z);
                data.extend_from_slice(&self.data[row0..row0 + sub.nx as usize]);
            }
        }
        RectGrid { dims: sub, data }
    }

    /// Minimum and maximum sample values, `(min, max)`. Returns
    /// `(inf, -inf)` for an empty grid.
    pub fn value_range(&self) -> (f32, f32) {
        self.data
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            })
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    #[test]
    fn dims_counts() {
        let d = Dims::new(4, 5, 6);
        assert_eq!(d.points(), 120);
        assert_eq!(d.cells(), 3 * 4 * 5);
        assert_eq!(d.byte_size(), 480);
    }

    #[test]
    fn index_is_x_fastest() {
        let d = Dims::new(3, 4, 5);
        assert_eq!(d.index(0, 0, 0), 0);
        assert_eq!(d.index(1, 0, 0), 1);
        assert_eq!(d.index(0, 1, 0), 3);
        assert_eq!(d.index(0, 0, 1), 12);
        assert_eq!(d.index(2, 3, 4), 59);
    }

    #[test]
    fn from_fn_matches_at() {
        let g = RectGrid::from_fn(Dims::new(4, 4, 4), |x, y, z| (x + 10 * y + 100 * z) as f32);
        assert_eq!(g.at(2, 3, 1), 132.0);
        assert_eq!(g.at(0, 0, 0), 0.0);
        assert_eq!(g.at(3, 3, 3), 333.0);
    }

    #[test]
    fn extract_subgrid() {
        let g = RectGrid::from_fn(Dims::new(6, 6, 6), |x, y, z| (x + 10 * y + 100 * z) as f32);
        let s = g.extract(1, 2, 3, Dims::new(2, 2, 2));
        assert_eq!(s.at(0, 0, 0), g.at(1, 2, 3));
        assert_eq!(s.at(1, 1, 1), g.at(2, 3, 4));
    }

    #[test]
    #[should_panic(expected = "x range out of bounds")]
    fn extract_out_of_bounds_panics() {
        let g = RectGrid::filled(Dims::new(4, 4, 4), 0.0);
        let _ = g.extract(3, 0, 0, Dims::new(2, 2, 2));
    }

    #[test]
    fn value_range_spans_data() {
        let g = RectGrid::from_fn(Dims::new(3, 3, 3), |x, _, _| x as f32 - 1.0);
        assert_eq!(g.value_range(), (-1.0, 1.0));
    }
}
