//! Synthetic reactive-transport fields standing in for ParSSim output.
//!
//! The paper's datasets come from ParSSim, a parallel subsurface simulator:
//! fluid flow plus transport of four chemical species over ten timesteps on
//! a rectilinear grid. We cannot run ParSSim, so this module generates a
//! deterministic analogue: each species is a sum of Gaussian plumes that
//! advect along a gently swirling velocity field and diffuse (widen) over
//! time, over a background of smooth low-amplitude noise. What matters for
//! the reproduction is preserved: smooth spatially-coherent scalar fields
//! whose isosurfaces have non-trivial, time-varying shape and whose
//! triangle density varies across sub-volumes (the source of load
//! imbalance the paper exploits).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::grid::{Dims, RectGrid};

/// Number of chemical species the paper's dataset carries.
pub const SPECIES_COUNT: u32 = 4;

/// Number of stored timesteps in the paper's datasets.
pub const TIMESTEPS: u32 = 10;

/// Parameters of the synthetic simulation.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Grid point dimensions.
    pub dims: Dims,
    /// RNG seed; the same seed always produces the same dataset.
    pub seed: u64,
    /// Plumes per species.
    pub plumes_per_species: u32,
    /// Background noise amplitude (fraction of plume amplitude).
    pub noise: f32,
}

impl SimParams {
    /// Sensible defaults for a `dims` grid.
    pub fn new(dims: Dims, seed: u64) -> Self {
        SimParams {
            dims,
            seed,
            plumes_per_species: 5,
            noise: 0.04,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Plume {
    center: [f32; 3],
    sigma: f32,
    amplitude: f32,
    drift: [f32; 3],
    growth: f32,
}

/// Generates species concentration fields for any (species, timestep)
/// pair, deterministically from the seed.
pub struct ParSSim {
    params: SimParams,
    plumes: Vec<Vec<Plume>>, // per species
    phase: [f32; 4],
}

impl ParSSim {
    /// Set up the generator (cheap; fields are produced on demand).
    pub fn new(params: SimParams) -> Self {
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let plumes = (0..SPECIES_COUNT)
            .map(|_| {
                (0..params.plumes_per_species)
                    .map(|_| Plume {
                        center: [
                            rng.gen_range(0.15..0.85),
                            rng.gen_range(0.15..0.85),
                            rng.gen_range(0.15..0.85),
                        ],
                        sigma: rng.gen_range(0.06..0.16),
                        amplitude: rng.gen_range(0.5..1.0),
                        drift: [
                            rng.gen_range(-0.03..0.03),
                            rng.gen_range(-0.03..0.03),
                            rng.gen_range(0.01..0.05), // buoyant rise
                        ],
                        growth: rng.gen_range(1.00..1.06),
                    })
                    .collect()
            })
            .collect();
        let phase = [
            rng.gen_range(0.0..std::f32::consts::TAU),
            rng.gen_range(0.0..std::f32::consts::TAU),
            rng.gen_range(0.0..std::f32::consts::TAU),
            rng.gen_range(0.0..std::f32::consts::TAU),
        ];
        ParSSim {
            params,
            plumes,
            phase,
        }
    }

    /// Grid dimensions fields are produced at.
    pub fn dims(&self) -> Dims {
        self.params.dims
    }

    /// Concentration field of `species` at `timestep`.
    ///
    /// Values are roughly in `[0, ~1.5]`; isovalues around `0.35..0.6`
    /// produce rich surfaces.
    pub fn field(&self, species: u32, timestep: u32) -> RectGrid {
        assert!(species < SPECIES_COUNT, "species out of range");
        let d = self.params.dims;
        let plumes = &self.plumes[species as usize];
        let t = timestep as f32;
        let noise_amp = self.params.noise;
        let ph = self.phase;

        // Advected plume snapshot at this timestep.
        let snap: Vec<Plume> = plumes
            .iter()
            .map(|p| {
                // Swirl: drift rotates slowly around z as time advances.
                let ang = 0.18 * t + ph[0];
                let (s, c) = ang.sin_cos();
                let dx = p.drift[0] * c - p.drift[1] * s;
                let dy = p.drift[0] * s + p.drift[1] * c;
                Plume {
                    center: [
                        wrap01(p.center[0] + dx * t),
                        wrap01(p.center[1] + dy * t),
                        wrap01(p.center[2] + p.drift[2] * t),
                    ],
                    sigma: p.sigma * p.growth.powf(t),
                    amplitude: p.amplitude / p.growth.powf(t), // mass spreads
                    drift: p.drift,
                    growth: p.growth,
                }
            })
            .collect();

        let inv = [
            1.0 / (d.nx.max(2) - 1) as f32,
            1.0 / (d.ny.max(2) - 1) as f32,
            1.0 / (d.nz.max(2) - 1) as f32,
        ];
        RectGrid::from_fn(d, |x, y, z| {
            let p = [x as f32 * inv[0], y as f32 * inv[1], z as f32 * inv[2]];
            let mut v = 0.0f32;
            for pl in &snap {
                let mut r2 = 0.0f32;
                for (pi, ci) in p.iter().zip(&pl.center) {
                    // Periodic distance, plumes wrap at the domain edge.
                    let mut dd = (pi - ci).abs();
                    if dd > 0.5 {
                        dd = 1.0 - dd;
                    }
                    r2 += dd * dd;
                }
                let s2 = pl.sigma * pl.sigma;
                if r2 < 9.0 * s2 {
                    v += pl.amplitude * (-r2 / (2.0 * s2)).exp();
                }
            }
            // Smooth deterministic background texture.
            v + noise_amp
                * ((p[0] * 9.2 + ph[1]).sin()
                    * (p[1] * 7.7 + ph[2]).sin()
                    * (p[2] * 8.4 + ph[3] + 0.11 * t).sin())
                .abs()
        })
    }
}

#[inline]
fn wrap01(v: f32) -> f32 {
    v - v.floor()
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    fn small() -> ParSSim {
        ParSSim::new(SimParams::new(Dims::new(17, 17, 17), 42))
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = small().field(0, 3);
        let b = small().field(0, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let a = ParSSim::new(SimParams::new(Dims::new(9, 9, 9), 1)).field(0, 0);
        let b = ParSSim::new(SimParams::new(Dims::new(9, 9, 9), 2)).field(0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn species_differ() {
        let sim = small();
        assert_ne!(sim.field(0, 0), sim.field(1, 0));
    }

    #[test]
    fn time_evolves() {
        let sim = small();
        assert_ne!(sim.field(0, 0), sim.field(0, 5));
    }

    #[test]
    fn values_are_positive_and_bounded() {
        let sim = small();
        for t in [0, 5, 9] {
            let (lo, hi) = sim.field(2, t).value_range();
            assert!(lo >= 0.0, "negative concentration {lo}");
            assert!(hi <= 6.0, "implausible concentration {hi}");
            assert!(hi > 0.2, "field is essentially empty ({hi})");
        }
    }

    #[test]
    fn isovalue_crosses_surface() {
        // A mid-range isovalue must separate the grid into both sides,
        // otherwise the extraction stage has nothing to do.
        let f = small().field(0, 2);
        let iso = 0.5;
        let above = f.data.iter().filter(|&&v| v > iso).count();
        assert!(above > 0 && above < f.data.len());
    }

    #[test]
    #[should_panic(expected = "species out of range")]
    fn species_bound_checked() {
        let _ = small().field(SPECIES_COUNT, 0);
    }
}
