//! Streaming chunk reads: iterate a data file's records in z-slab slices
//! without materializing whole chunks.
//!
//! [`crate::DiskStore::read_file`] decodes every chunk of a file into
//! memory at once — fine when the dataset fits in RAM, impossible when it
//! is 10–100× larger. A [`ChunkCursor`] walks the same `.dcvf` file one
//! record at a time and hands out **z-slabs**: because chunk payloads are
//! stored x-fastest row-major (`index = (z*ny + y)*nx + x`), a run of
//! consecutive z-planes is one contiguous byte range of the record, so a
//! slab can be read straight off the disk into a bounded, reused scratch
//! buffer. The caller chooses the scratch budget; the cursor never holds
//! more than `max(budget, one z-plane)` of decoded data at a time.
//!
//! Chunks that are not wanted (outside the query's selected set) are
//! skipped with a forward seek — no payload bytes are read for them,
//! mirroring how the read filter's cost model charges only selected
//! chunks.
//!
//! Integrity: the cursor folds every payload byte it reads (the 12-byte
//! dims header and each slab) into a running FNV-64 digest and verifies
//! the record's stored checksum when the chunk's last slab completes —
//! so a fully-streamed chunk is exactly as corruption-protected as a
//! [`crate::DiskStore::read_chunk`] (skipped chunks are seeked past and
//! not verified, matching their zero read cost). Reads also consult the
//! store's [`crate::integrity::ReadFaults`] seam, so injected disk
//! errors and bit-flips exercise the same paths real ones would.

use std::fs;
use std::io::{self, Read, Seek, SeekFrom};

use crate::chunks::ChunkId;
use crate::decluster::FileId;
use crate::diskstore::{DiskStore, RECORD_TRAILER_BYTES};
use crate::grid::{Dims, RectGrid};
use crate::integrity::{FaultSeam, Fnv64};

/// Header of the record the cursor is positioned on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkHeader {
    /// The chunk this record holds.
    pub id: ChunkId,
    /// Point dimensions of the chunk's grid.
    pub dims: Dims,
    /// Payload bytes of the record (12-byte dims header + f32 data).
    pub payload_bytes: u64,
}

/// One streamed z-slab of the current chunk. Borrows the cursor's scratch
/// buffer; consume it before asking for the next slab.
#[derive(Debug)]
pub struct Slab<'c> {
    /// Chunk the slab belongs to.
    pub chunk: ChunkId,
    /// Full point dimensions of that chunk.
    pub dims: Dims,
    /// First z-plane (inclusive) of this slab, in chunk-local coordinates.
    pub z0: u32,
    /// Number of z-planes in this slab.
    pub nz: u32,
    /// The slab's values, x-fastest row-major over `nx × ny × nz` points.
    pub data: &'c [f32],
}

/// Streaming reader over one declustered data file. See the module docs.
pub struct ChunkCursor {
    fh: fs::File,
    records_left: u32,
    cur: Option<CurChunk>,
    /// Raw-byte scratch, reused across slabs (bounded by the budget).
    scratch: Vec<u8>,
    /// Decoded-value scratch, reused across slabs.
    values: Vec<f32>,
    /// Max bytes of payload materialized per slab (floor: one z-plane).
    budget: usize,
    /// Peak scratch bytes ever materialized (observability for tests and
    /// the out-of-core bench).
    peak_slab_bytes: usize,
    /// The owning store's injected-fault seam (shared op counter).
    seam: FaultSeam,
}

struct CurChunk {
    id: ChunkId,
    dims: Dims,
    z_next: u32,
    /// Running FNV-64 over the payload bytes streamed so far, verified
    /// against the record trailer when the last slab completes.
    digest: Fnv64,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Read the little-endian `u32` at byte offset `at` of `b`, or a
/// structured parse error for short input (no panicking slice).
fn le_u32(b: &[u8], at: usize, what: &str) -> io::Result<u32> {
    b.get(at..at + 4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| bad(format!("short read parsing {what}")))
}

impl ChunkCursor {
    /// Open a cursor over `file` of `store` with a per-slab scratch budget
    /// of `budget_bytes` (clamped up to one z-plane of the chunk being
    /// streamed — the minimum indivisible unit).
    pub fn open(store: &DiskStore, file: FileId, budget_bytes: usize) -> io::Result<ChunkCursor> {
        let mut fh = fs::File::open(store.data_file_path(file))?;
        let mut header = [0u8; 12];
        fh.read_exact(&mut header)?;
        if &header[0..4] != b"DCVF" {
            return Err(bad("bad data file magic"));
        }
        let records_left = le_u32(&header, 8, "data file record count")?;
        Ok(ChunkCursor {
            fh,
            records_left,
            cur: None,
            scratch: Vec::new(),
            values: Vec::new(),
            budget: budget_bytes.max(1),
            peak_slab_bytes: 0,
            seam: store.seam(),
        })
    }

    /// Advance to the next record, skipping (seeking past) whatever is
    /// left of the current chunk. Returns `None` after the last record.
    pub fn next_chunk(&mut self) -> io::Result<Option<ChunkHeader>> {
        self.skip_rest_of_chunk()?;
        if self.records_left == 0 {
            return Ok(None);
        }
        self.records_left -= 1;
        let mut rec = [0u8; 8];
        self.fh.read_exact(&mut rec)?;
        let id = ChunkId(le_u32(&rec, 0, "record chunk id")?);
        let len = le_u32(&rec, 4, "record payload length")? as u64;
        let mut dims_hdr = [0u8; 12];
        self.fh.read_exact(&mut dims_hdr)?;
        let dims = Dims::new(
            le_u32(&dims_hdr, 0, "chunk dims")?,
            le_u32(&dims_hdr, 4, "chunk dims")?,
            le_u32(&dims_hdr, 8, "chunk dims")?,
        );
        if len != 12 + dims.byte_size() {
            return Err(bad("record length inconsistent with chunk dims"));
        }
        let mut digest = Fnv64::new();
        digest.update(&dims_hdr);
        self.cur = Some(CurChunk {
            id,
            dims,
            z_next: 0,
            digest,
        });
        Ok(Some(ChunkHeader {
            id,
            dims,
            payload_bytes: len,
        }))
    }

    /// Stream the next z-slab of the current chunk into the reused scratch
    /// buffer. Returns `None` once the chunk is fully consumed (or when no
    /// chunk is current); the `None`-producing call verifies the record
    /// checksum over everything streamed, so a corrupted chunk fails here
    /// with [`io::ErrorKind::InvalidData`] rather than yielding bad data
    /// unnoticed.
    pub fn next_slab(&mut self) -> io::Result<Option<Slab<'_>>> {
        let Some(cur) = &mut self.cur else {
            return Ok(None);
        };
        if cur.z_next >= cur.dims.nz {
            // The chunk streamed completely: consume the trailer and
            // verify the running digest against it.
            let computed = cur.digest.finish();
            let bytes = 12 + cur.dims.byte_size();
            self.cur = None;
            let mut trailer = [0u8; RECORD_TRAILER_BYTES as usize];
            self.fh.read_exact(&mut trailer)?;
            let stored = u64::from_le_bytes(trailer);
            if stored != computed {
                return Err(bad(format!(
                    "record checksum mismatch over {bytes} payload bytes: stored {stored:016x}, computed {computed:016x}"
                )));
            }
            return Ok(None);
        }
        let plane_points = (cur.dims.nx * cur.dims.ny) as usize;
        let plane_bytes = plane_points * 4;
        // At least one z-plane per slab; otherwise as many whole planes as
        // fit in the budget.
        let nz_fit = (self.budget / plane_bytes.max(1)).max(1) as u32;
        let z0 = cur.z_next;
        let nz = nz_fit.min(cur.dims.nz - z0);
        let bytes = plane_bytes * nz as usize;
        let op = self.seam.next_op();
        if let Some(err) = self.seam.read_error(op) {
            return Err(err);
        }
        self.scratch.resize(bytes, 0);
        self.fh.read_exact(&mut self.scratch)?;
        self.seam.tamper(op, &mut self.scratch);
        cur.digest.update(&self.scratch);
        self.peak_slab_bytes = self.peak_slab_bytes.max(bytes);
        let n = plane_points * nz as usize;
        self.values.clear();
        self.values.reserve(n);
        for i in 0..n {
            let off = i * 4;
            let word = self
                .scratch
                .get(off..off + 4)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| bad("slab scratch shorter than its plane count"))?;
            self.values.push(f32::from_le_bytes(word));
        }
        cur.z_next += nz;
        let (id, dims) = (cur.id, cur.dims);
        Ok(Some(Slab {
            chunk: id,
            dims,
            z0,
            nz,
            data: &self.values,
        }))
    }

    /// Seek past whatever payload of the current chunk has not been
    /// streamed yet, plus the record trailer (cheap skip of unselected
    /// chunks — skipped bytes are not checksum-verified, matching their
    /// zero read cost).
    fn skip_rest_of_chunk(&mut self) -> io::Result<()> {
        if let Some(cur) = self.cur.take() {
            let plane_bytes = (cur.dims.nx * cur.dims.ny) as u64 * 4;
            let left = plane_bytes * (cur.dims.nz - cur.z_next) as u64 + RECORD_TRAILER_BYTES;
            self.fh.seek(SeekFrom::Current(left as i64))?;
        }
        Ok(())
    }

    /// Assemble the full grid of the *current* chunk by streaming its
    /// remaining slabs (from-the-start equivalence with
    /// [`DiskStore::read_chunk`] when called right after
    /// [`next_chunk`](Self::next_chunk)). The per-slab memory stays
    /// budget-bounded; only the destination grid is chunk-sized. The
    /// record checksum is verified before the grid is returned.
    pub fn assemble_chunk(&mut self) -> io::Result<Option<(ChunkId, RectGrid)>> {
        let Some(cur) = &self.cur else {
            return Ok(None);
        };
        let (id, dims) = (cur.id, cur.dims);
        let mut data = Vec::with_capacity(dims.points() as usize);
        while let Some(slab) = self.next_slab()? {
            data.extend_from_slice(slab.data);
        }
        if data.len() != dims.points() as usize {
            return Err(bad("streamed chunk incomplete"));
        }
        Ok(Some((id, RectGrid { dims, data })))
    }

    /// Largest slab (in bytes) materialized so far.
    pub fn peak_slab_bytes(&self) -> usize {
        self.peak_slab_bytes
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::diskstore::write_dataset;
    use crate::store::Dataset;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dcvol_cursor_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn dataset() -> Dataset {
        Dataset::generate(Dims::new(9, 9, 17), (2, 2, 4), 6, 99)
    }

    #[test]
    fn streamed_chunks_match_materialized_reads() {
        let dir = tmpdir("equiv");
        let ds = dataset();
        let store = write_dataset(&dir, &ds, 0, 2).unwrap();
        for f in 0..store.n_files() {
            // A budget far below one chunk: every chunk streams in many
            // slabs.
            let mut cur = ChunkCursor::open(&store, FileId(f), 64).unwrap();
            let full = store.read_file(FileId(f)).unwrap();
            let mut i = 0;
            while let Some(hdr) = cur.next_chunk().unwrap() {
                let (id, grid) = cur.assemble_chunk().unwrap().unwrap();
                assert_eq!(hdr.id, id);
                assert_eq!((full[i].0, &full[i].1), (id, &grid), "chunk {}", id.0);
                i += 1;
            }
            assert_eq!(i, full.len());
            // Scratch stayed bounded: one z-plane of the 5x5-point chunks
            // is 100 bytes (> the 64-byte budget, so the floor applies).
            assert!(cur.peak_slab_bytes() <= 5 * 5 * 4, "one plane at most");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slabs_cover_each_chunk_exactly_once() {
        let dir = tmpdir("cover");
        let ds = dataset();
        let store = write_dataset(&dir, &ds, 1, 0).unwrap();
        let mut cur = ChunkCursor::open(&store, FileId(0), 200).unwrap();
        while let Some(hdr) = cur.next_chunk().unwrap() {
            let mut z = 0;
            while let Some(slab) = cur.next_slab().unwrap() {
                assert_eq!(slab.z0, z);
                assert_eq!(
                    slab.data.len() as u32,
                    slab.dims.nx * slab.dims.ny * slab.nz
                );
                z += slab.nz;
            }
            assert_eq!(z, hdr.dims.nz, "slabs tile the z extent");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn skipping_unselected_chunks_seeks_not_reads() {
        let dir = tmpdir("skip");
        let ds = dataset();
        let store = write_dataset(&dir, &ds, 0, 1).unwrap();
        let ids = store.chunks_in_file(FileId(0)).to_vec();
        assert!(ids.len() >= 2, "test needs at least two records");
        // Stream only the last chunk; skip everything before it.
        let want = *ids.last().unwrap();
        let mut cur = ChunkCursor::open(&store, FileId(0), 1 << 20).unwrap();
        let mut got = None;
        while let Some(hdr) = cur.next_chunk().unwrap() {
            if hdr.id == want {
                got = cur.assemble_chunk().unwrap();
            }
            // else: next_chunk seeks past the payload.
        }
        let (id, grid) = got.expect("found the wanted chunk");
        assert_eq!(id, want);
        assert_eq!(grid, store.read_chunk(FileId(0), want).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn big_budget_yields_single_slab_per_chunk() {
        let dir = tmpdir("one_slab");
        let ds = dataset();
        let store = write_dataset(&dir, &ds, 0, 0).unwrap();
        let mut cur = ChunkCursor::open(&store, FileId(0), 1 << 20).unwrap();
        while let Some(hdr) = cur.next_chunk().unwrap() {
            let mut slabs = 0;
            while let Some(slab) = cur.next_slab().unwrap() {
                assert_eq!(slab.nz, hdr.dims.nz);
                slabs += 1;
            }
            assert_eq!(slabs, 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streamed_reads_detect_stored_corruption() {
        let dir = tmpdir("stream_corrupt");
        let ds = dataset();
        let store = write_dataset(&dir, &ds, 0, 0).unwrap();
        let path = store.data_file_path(FileId(0));
        let mut bytes = std::fs::read(&path).unwrap();
        // One bit inside the first record's f32 data.
        bytes[12 + 8 + 12 + 5] ^= 0x10;
        std::fs::write(&path, bytes).unwrap();
        let mut cur = ChunkCursor::open(&store, FileId(0), 64).unwrap();
        cur.next_chunk().unwrap();
        let err = cur.assemble_chunk().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum mismatch"), "got: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursor_consults_the_store_fault_seam() {
        use crate::integrity::ReadFaults;
        use std::sync::Arc;
        struct CorruptOp1;
        impl ReadFaults for CorruptOp1 {
            fn read_error(&self, _op: u64) -> Option<io::Error> {
                None
            }
            fn corrupt_bit(&self, op: u64, _len_bits: u64) -> Option<u64> {
                (op == 1).then_some(0)
            }
        }
        let dir = tmpdir("seamed");
        let ds = dataset();
        let mut store = write_dataset(&dir, &ds, 0, 0).unwrap();
        store.set_read_faults(Arc::new(CorruptOp1));
        // Small budget: several slab reads per chunk, op 1 is the second
        // slab of the first chunk — its bit-flip must fail the chunk's
        // final checksum verification.
        let mut cur = ChunkCursor::open(&store, FileId(0), 64).unwrap();
        cur.next_chunk().unwrap();
        let err = cur.assemble_chunk().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "got: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
