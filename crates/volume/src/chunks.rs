//! Partitioning a grid into equal sub-volumes ("chunks").
//!
//! The paper partitions each timestep's grid into equal sub-volumes (1536
//! for the 1.5 GB dataset, 24576 for the 25 GB dataset) which are then
//! declustered across 64 data files. A chunk owns a box of *cells*; its
//! stored point data includes one extra layer of points on the high side of
//! each axis so marching cubes can process every owned cell without
//! touching neighbours.

use serde::{Deserialize, Serialize};

use crate::grid::{Dims, RectGrid};

/// Identifies a chunk by its position in the chunk lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkId(pub u32);

/// How a grid is split into chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkLayout {
    /// Point dimensions of the full grid.
    pub grid: Dims,
    /// Number of chunks along each axis.
    pub chunks: (u32, u32, u32),
}

/// Location and extent of one chunk within its grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkInfo {
    /// Which chunk.
    pub id: ChunkId,
    /// Position in the chunk lattice.
    pub coord: (u32, u32, u32),
    /// First owned cell along each axis.
    pub cell_origin: (u32, u32, u32),
    /// Owned cells along each axis.
    pub cell_extent: (u32, u32, u32),
}

impl ChunkInfo {
    /// Point dimensions of the stored data (cells + 1 along each axis).
    pub fn point_dims(&self) -> Dims {
        Dims::new(
            self.cell_extent.0 + 1,
            self.cell_extent.1 + 1,
            self.cell_extent.2 + 1,
        )
    }

    /// Bytes of the stored f32 point data.
    pub fn byte_size(&self) -> u64 {
        self.point_dims().byte_size()
    }
}

impl ChunkLayout {
    /// Split `grid` into `cx × cy × cz` chunks of cells. Each axis's cells
    /// are divided as evenly as possible (earlier chunks get the
    /// remainder). Panics if an axis has more chunks than cells.
    pub fn new(grid: Dims, chunks: (u32, u32, u32)) -> Self {
        assert!(chunks.0 >= 1 && chunks.1 >= 1 && chunks.2 >= 1);
        assert!(grid.nx > chunks.0, "more x-chunks than x-cells");
        assert!(grid.ny > chunks.1, "more y-chunks than y-cells");
        assert!(grid.nz > chunks.2, "more z-chunks than z-cells");
        ChunkLayout { grid, chunks }
    }

    /// Total number of chunks.
    pub fn count(&self) -> u32 {
        self.chunks.0 * self.chunks.1 * self.chunks.2
    }

    /// Chunk lattice coordinate of `id`.
    pub fn coord(&self, id: ChunkId) -> (u32, u32, u32) {
        let i = id.0;
        let cx = i % self.chunks.0;
        let cy = (i / self.chunks.0) % self.chunks.1;
        let cz = i / (self.chunks.0 * self.chunks.1);
        (cx, cy, cz)
    }

    /// Chunk id at lattice coordinate.
    pub fn id_at(&self, coord: (u32, u32, u32)) -> ChunkId {
        ChunkId((coord.2 * self.chunks.1 + coord.1) * self.chunks.0 + coord.0)
    }

    /// Full description of chunk `id`.
    pub fn info(&self, id: ChunkId) -> ChunkInfo {
        assert!(id.0 < self.count(), "chunk id out of range");
        let coord = self.coord(id);
        let (o_x, e_x) = axis_range(self.grid.nx - 1, self.chunks.0, coord.0);
        let (o_y, e_y) = axis_range(self.grid.ny - 1, self.chunks.1, coord.1);
        let (o_z, e_z) = axis_range(self.grid.nz - 1, self.chunks.2, coord.2);
        ChunkInfo {
            id,
            coord,
            cell_origin: (o_x, o_y, o_z),
            cell_extent: (e_x, e_y, e_z),
        }
    }

    /// All chunk descriptions in id order.
    pub fn all(&self) -> Vec<ChunkInfo> {
        (0..self.count()).map(|i| self.info(ChunkId(i))).collect()
    }

    /// Extract the stored point data of chunk `id` from the full field.
    pub fn extract(&self, field: &RectGrid, id: ChunkId) -> RectGrid {
        assert_eq!(field.dims, self.grid, "field does not match layout grid");
        let info = self.info(id);
        field.extract(
            info.cell_origin.0,
            info.cell_origin.1,
            info.cell_origin.2,
            info.point_dims(),
        )
    }
}

/// Evenly divide `cells` cells into `parts`; returns `(origin, extent)` of
/// part `idx`.
fn axis_range(cells: u32, parts: u32, idx: u32) -> (u32, u32) {
    let base = cells / parts;
    let rem = cells % parts;
    let extent = base + if idx < rem { 1 } else { 0 };
    let origin = idx * base + idx.min(rem);
    (origin, extent)
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    #[test]
    fn axis_range_covers_exactly() {
        for cells in [7u32, 8, 13, 64] {
            for parts in [1u32, 2, 3, 4, 7] {
                if parts > cells {
                    continue;
                }
                let mut next = 0;
                for i in 0..parts {
                    let (o, e) = axis_range(cells, parts, i);
                    assert_eq!(o, next, "gap at part {i} ({cells}/{parts})");
                    assert!(e >= 1);
                    next = o + e;
                }
                assert_eq!(next, cells);
            }
        }
    }

    #[test]
    fn chunk_ids_roundtrip_coords() {
        let l = ChunkLayout::new(Dims::new(17, 17, 17), (2, 3, 4));
        for i in 0..l.count() {
            let id = ChunkId(i);
            assert_eq!(l.id_at(l.coord(id)), id);
        }
        assert_eq!(l.count(), 24);
    }

    #[test]
    fn chunks_tile_all_cells() {
        let l = ChunkLayout::new(Dims::new(9, 9, 9), (2, 2, 2));
        let mut owned = vec![false; l.grid.cells() as usize];
        for info in l.all() {
            for z in 0..info.cell_extent.2 {
                for y in 0..info.cell_extent.1 {
                    for x in 0..info.cell_extent.0 {
                        let gx = info.cell_origin.0 + x;
                        let gy = info.cell_origin.1 + y;
                        let gz = info.cell_origin.2 + z;
                        let idx = ((gz * 8 + gy) * 8 + gx) as usize;
                        assert!(!owned[idx], "cell ({gx},{gy},{gz}) owned twice");
                        owned[idx] = true;
                    }
                }
            }
        }
        assert!(owned.iter().all(|&o| o));
    }

    #[test]
    fn extract_has_overlap_points() {
        let l = ChunkLayout::new(Dims::new(5, 5, 5), (2, 1, 1));
        let field = RectGrid::from_fn(l.grid, |x, y, z| (x + 10 * y + 100 * z) as f32);
        let c0 = l.extract(&field, ChunkId(0));
        let c1 = l.extract(&field, ChunkId(1));
        // Chunk 0 owns cells x 0..2 -> points 0..=2; chunk 1 cells 2..4 ->
        // points 2..=4. The shared plane x=2 appears in both.
        assert_eq!(c0.dims.nx, 3);
        assert_eq!(c1.dims.nx, 3);
        assert_eq!(c0.at(2, 1, 1), field.at(2, 1, 1));
        assert_eq!(c1.at(0, 1, 1), field.at(2, 1, 1));
    }

    #[test]
    fn paper_like_chunk_counts() {
        // Small dataset analogue: 1536 = 8 x 8 x 24 sub-volumes.
        let l = ChunkLayout::new(Dims::new(257, 257, 1025), (8, 8, 24));
        assert_eq!(l.count(), 1536);
        // Large dataset analogue: 24576 = 16 x 16 x 96.
        let l = ChunkLayout::new(Dims::new(1025, 1025, 1025), (16, 16, 96));
        assert_eq!(l.count(), 24576);
    }

    #[test]
    fn byte_size_matches_points() {
        let l = ChunkLayout::new(Dims::new(9, 9, 9), (2, 2, 2));
        let info = l.info(ChunkId(0));
        assert_eq!(info.byte_size(), 5 * 5 * 5 * 4);
    }
}
