//! # volume — scientific dataset substrate
//!
//! The data layer of the DataCutter reproduction: rectilinear scalar
//! grids, a deterministic ParSSim-like synthetic generator, partitioning
//! into equal sub-volumes, Hilbert-curve declustering across data files,
//! file→disk placement (balanced and skewed), range queries, and a binary
//! chunk encoding.
//!
//! The paper's datasets (1.5 GB / 25 GB ParSSim reactive-transport output)
//! are replaced by scaled-down synthetic fields with identical *structure*:
//! the same chunking and declustering scheme, spatially coherent plume
//! fields whose isosurface density varies across chunks, and multiple
//! species over multiple timesteps.

#![warn(missing_docs)]
// The data layer sits under the runtime's self-healing storage plane: a
// stray `unwrap`/`expect` here is an uncontained panic path that bypasses
// the structured-error degradation ladder (test modules opt back in with
// explicit `#[allow]`s). Enforced via the workspace `clippy.toml` ban.
#![deny(clippy::disallowed_methods)]

pub mod cache;
pub mod chunks;
pub mod cursor;
pub mod decluster;
pub mod diskstore;
pub mod grid;
pub mod hilbert;
pub mod integrity;
pub mod parssim;
pub mod query;
pub mod store;

pub use cache::{CacheKey, CacheStats, ChunkCache};
pub use chunks::{ChunkId, ChunkInfo, ChunkLayout};
pub use cursor::{ChunkCursor, ChunkHeader, Slab};
pub use decluster::{hilbert_decluster, Declustering, FileId, FilePlacement};
pub use diskstore::{write_dataset, DiskStore};
pub use grid::{Dims, RectGrid};
pub use hilbert::{hilbert_coords, hilbert_index};
pub use integrity::{fnv64, Fnv64, ReadFaults};
pub use parssim::{ParSSim, SimParams, SPECIES_COUNT, TIMESTEPS};
pub use query::{chunks_intersecting, CellRange};
pub use store::{decode_chunk, encode_chunk, Dataset};
