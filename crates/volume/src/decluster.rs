//! Hilbert-curve declustering of chunks across data files, and placement
//! of data files onto cluster disks.
//!
//! Following Faloutsos & Bhagwat (the algorithm the paper cites), chunks
//! are sorted by the Hilbert index of their lattice coordinate and striped
//! round-robin across `n_files` files. Spatially close chunks land in
//! different files, so a contiguous range query hits many files — and,
//! once files are spread over hosts/disks, many spindles in parallel.

use serde::{Deserialize, Serialize};

use crate::chunks::{ChunkId, ChunkLayout};
use crate::hilbert::hilbert_index;

/// Identifies a data file within one declustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// Assignment of every chunk to a data file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Declustering {
    /// Number of data files.
    pub n_files: u32,
    /// `file_of_chunk[chunk.0]` is the owning file.
    pub file_of_chunk: Vec<FileId>,
    /// Chunks in each file, in Hilbert-curve order.
    pub chunks_of_file: Vec<Vec<ChunkId>>,
}

/// Decluster `layout`'s chunks across `n_files` files (the paper uses 64).
pub fn hilbert_decluster(layout: &ChunkLayout, n_files: u32) -> Declustering {
    assert!(n_files >= 1);
    let (cx, cy, cz) = layout.chunks;
    let max_side = cx.max(cy).max(cz);
    let bits = (32 - (max_side - 1).leading_zeros()).max(1);

    let mut order: Vec<(u64, ChunkId)> = (0..layout.count())
        .map(|i| {
            let id = ChunkId(i);
            let (x, y, z) = layout.coord(id);
            (hilbert_index([x, y, z], bits), id)
        })
        .collect();
    order.sort_unstable();

    let mut file_of_chunk = vec![FileId(0); layout.count() as usize];
    let mut chunks_of_file: Vec<Vec<ChunkId>> = vec![Vec::new(); n_files as usize];
    for (pos, (_, id)) in order.into_iter().enumerate() {
        let f = FileId((pos as u32) % n_files);
        file_of_chunk[id.0 as usize] = f;
        chunks_of_file[f.0 as usize].push(id);
    }
    Declustering {
        n_files,
        file_of_chunk,
        chunks_of_file,
    }
}

/// Placement of data files onto `(host, disk)` pairs. Host indices here
/// are *storage node indices* (0-based within the set of data-holding
/// nodes); callers map them to topology host ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FilePlacement {
    /// `location_of_file[file.0] = (node_index, disk_index)`.
    pub location_of_file: Vec<(u32, u32)>,
    /// Number of storage nodes.
    pub n_nodes: u32,
}

impl FilePlacement {
    /// Spread files round-robin across `n_nodes` nodes with
    /// `disks_per_node` disks each — the paper's "balanced" placement.
    pub fn balanced(n_files: u32, n_nodes: u32, disks_per_node: u32) -> Self {
        assert!(n_nodes >= 1 && disks_per_node >= 1);
        let location_of_file = (0..n_files)
            .map(|f| {
                let node = f % n_nodes;
                let disk = (f / n_nodes) % disks_per_node;
                (node, disk)
            })
            .collect();
        FilePlacement {
            location_of_file,
            n_nodes,
        }
    }

    /// The paper's skewed placement (Section 4.5): start balanced over
    /// `n_nodes`, then move `percent`% of the files owned by nodes in
    /// `from_nodes` onto `to_nodes` (distributed evenly). Models datasets
    /// that could not be placed evenly because of space constraints.
    pub fn skewed(
        n_files: u32,
        n_nodes: u32,
        disks_per_node: u32,
        from_nodes: &[u32],
        to_nodes: &[u32],
        percent: u32,
    ) -> Self {
        assert!(percent <= 100);
        let mut p = Self::balanced(n_files, n_nodes, disks_per_node);
        let movable: Vec<u32> = (0..n_files)
            .filter(|&f| from_nodes.contains(&p.location_of_file[f as usize].0))
            .collect();
        let to_move = (movable.len() as u64 * percent as u64 / 100) as usize;
        for (i, &f) in movable.iter().take(to_move).enumerate() {
            let node = to_nodes[i % to_nodes.len()];
            let disk = (i as u32 / to_nodes.len() as u32) % disks_per_node;
            p.location_of_file[f as usize] = (node, disk);
        }
        p
    }

    /// Number of files stored on each node.
    pub fn files_per_node(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_nodes as usize];
        for &(node, _) in &self.location_of_file {
            counts[node as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::grid::Dims;

    fn layout_64() -> ChunkLayout {
        ChunkLayout::new(Dims::new(17, 17, 17), (4, 4, 4))
    }

    #[test]
    fn every_chunk_gets_a_file() {
        let l = layout_64();
        let d = hilbert_decluster(&l, 8);
        assert_eq!(d.file_of_chunk.len(), 64);
        let total: usize = d.chunks_of_file.iter().map(|c| c.len()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn files_are_balanced() {
        let l = layout_64();
        let d = hilbert_decluster(&l, 8);
        for f in &d.chunks_of_file {
            assert_eq!(f.len(), 8);
        }
    }

    #[test]
    fn mapping_is_consistent() {
        let l = layout_64();
        let d = hilbert_decluster(&l, 7); // uneven divisor
        for (i, &f) in d.file_of_chunk.iter().enumerate() {
            assert!(d.chunks_of_file[f.0 as usize].contains(&ChunkId(i as u32)));
        }
    }

    #[test]
    fn adjacent_chunks_usually_differ_in_file() {
        // Hilbert striping sends curve-adjacent (hence space-adjacent)
        // chunks to different files.
        let l = layout_64();
        let d = hilbert_decluster(&l, 8);
        let mut same = 0;
        let mut pairs = 0;
        for z in 0..4u32 {
            for y in 0..4u32 {
                for x in 0..3u32 {
                    let a = d.file_of_chunk[l.id_at((x, y, z)).0 as usize];
                    let b = d.file_of_chunk[l.id_at((x + 1, y, z)).0 as usize];
                    pairs += 1;
                    if a == b {
                        same += 1;
                    }
                }
            }
        }
        assert!(
            same * 4 < pairs,
            "too many x-neighbours share a file: {same}/{pairs}"
        );
    }

    #[test]
    fn non_power_of_two_lattice() {
        let l = ChunkLayout::new(Dims::new(13, 10, 7), (3, 3, 2));
        let d = hilbert_decluster(&l, 4);
        assert_eq!(d.file_of_chunk.len(), 18);
        let total: usize = d.chunks_of_file.iter().map(|c| c.len()).sum();
        assert_eq!(total, 18);
    }

    #[test]
    fn balanced_placement_spreads_files() {
        let p = FilePlacement::balanced(64, 4, 2);
        assert_eq!(p.files_per_node(), vec![16, 16, 16, 16]);
        // Both disks used on node 0.
        let disks: std::collections::HashSet<u32> = p
            .location_of_file
            .iter()
            .filter(|(n, _)| *n == 0)
            .map(|&(_, d)| d)
            .collect();
        assert_eq!(disks.len(), 2);
    }

    #[test]
    fn skewed_placement_moves_percentage() {
        // 4 nodes; move 50% of files on nodes {0,1} to nodes {2,3}.
        let p = FilePlacement::skewed(64, 4, 2, &[0, 1], &[2, 3], 50);
        let counts = p.files_per_node();
        assert_eq!(counts[0] + counts[1], 16);
        assert_eq!(counts[2] + counts[3], 48);
    }

    #[test]
    fn skewed_zero_percent_is_balanced() {
        let a = FilePlacement::balanced(64, 4, 2);
        let b = FilePlacement::skewed(64, 4, 2, &[0, 1], &[2, 3], 0);
        assert_eq!(a.location_of_file, b.location_of_file);
    }

    #[test]
    fn skewed_hundred_percent_empties_sources() {
        let p = FilePlacement::skewed(64, 4, 2, &[0, 1], &[2, 3], 100);
        let counts = p.files_per_node();
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1], 0);
        assert_eq!(counts[2] + counts[3], 64);
    }
}
