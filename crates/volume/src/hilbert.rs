//! 3-D Hilbert space-filling curve (Skilling's transpose algorithm).
//!
//! Used by [`crate::decluster`] to order sub-volumes before assigning them
//! to data files, following the Hilbert-curve-based declustering of
//! Faloutsos & Bhagwat that the paper uses: chunks close on the curve are
//! close in space, so striping the curve across files spreads any spatially
//! contiguous range query over many files (and hence many disks).

/// Encode a 3-D coordinate into its Hilbert-curve index.
///
/// Each coordinate must be `< 2^bits`; `bits` must be `<= 21` so the result
/// fits a `u64`.
pub fn hilbert_index(coords: [u32; 3], bits: u32) -> u64 {
    assert!((1..=21).contains(&bits), "bits must be in 1..=21");
    for &c in &coords {
        assert!(
            c < (1u32 << bits),
            "coordinate {c} out of range for {bits} bits"
        );
    }
    let mut x = coords;
    axes_to_transpose(&mut x, bits);
    interleave(x, bits)
}

/// Decode a Hilbert-curve index back into its 3-D coordinate.
pub fn hilbert_coords(index: u64, bits: u32) -> [u32; 3] {
    assert!((1..=21).contains(&bits), "bits must be in 1..=21");
    assert!(
        index < 1u64 << (3 * bits),
        "index out of range for {bits} bits"
    );
    let mut x = deinterleave(index, bits);
    transpose_to_axes(&mut x, bits);
    x
}

/// Gray-code "transpose" form -> axis coordinates (Skilling 2004).
fn transpose_to_axes(x: &mut [u32; 3], bits: u32) {
    let n = 3usize;
    let t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    let mut q: u32 = 2;
    while q != (1u32 << bits) {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Axis coordinates -> Gray-code "transpose" form (Skilling 2004).
fn axes_to_transpose(x: &mut [u32; 3], bits: u32) {
    let n = 3usize;
    let mut q: u32 = 1 << (bits - 1);
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t2: u32 = 0;
    let mut q: u32 = 1 << (bits - 1);
    while q > 1 {
        if x[n - 1] & q != 0 {
            t2 ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t2;
    }
}

/// Pack the transpose form into a single index: bit `b` of axis `i`
/// contributes bit `3*b + (2 - i)` of the result.
fn interleave(x: [u32; 3], bits: u32) -> u64 {
    let mut out: u64 = 0;
    for b in (0..bits).rev() {
        for (i, xi) in x.iter().enumerate() {
            let bit = ((xi >> b) & 1) as u64;
            out = (out << 1) | bit;
            let _ = i;
        }
    }
    out
}

/// Inverse of [`interleave`].
fn deinterleave(index: u64, bits: u32) -> [u32; 3] {
    let mut x = [0u32; 3];
    let mut idx = index;
    for b in 0..bits {
        for i in (0..3).rev() {
            x[i] |= ((idx & 1) as u32) << b;
            idx >>= 1;
        }
    }
    x
}

/// Order the points of a `side³` box (with `side = 2^bits`) by Hilbert
/// index; returns coordinates in curve order. Convenience for declustering.
pub fn hilbert_order(bits: u32) -> Vec<[u32; 3]> {
    let side = 1u64 << bits;
    let total = side * side * side;
    (0..total).map(|i| hilbert_coords(i, bits)).collect()
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small() {
        for bits in 1..=4 {
            let side = 1u32 << bits;
            for z in 0..side {
                for y in 0..side {
                    for x in 0..side {
                        let idx = hilbert_index([x, y, z], bits);
                        assert_eq!(hilbert_coords(idx, bits), [x, y, z]);
                    }
                }
            }
        }
    }

    #[test]
    fn indices_are_a_permutation() {
        let bits = 3;
        let side = 1u32 << bits;
        let mut seen = vec![false; (side * side * side) as usize];
        for z in 0..side {
            for y in 0..side {
                for x in 0..side {
                    let idx = hilbert_index([x, y, z], bits) as usize;
                    assert!(!seen[idx], "duplicate index {idx}");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consecutive_indices_are_adjacent() {
        // The defining Hilbert property: successive curve positions differ
        // by exactly one unit step along exactly one axis.
        for bits in 1..=4 {
            let order = hilbert_order(bits);
            for w in order.windows(2) {
                let d: u32 = (0..3)
                    .map(|i| (w[0][i] as i64 - w[1][i] as i64).unsigned_abs() as u32)
                    .sum();
                assert_eq!(
                    d, 1,
                    "non-adjacent step {:?} -> {:?} at bits={bits}",
                    w[0], w[1]
                );
            }
        }
    }

    #[test]
    fn curve_starts_at_origin() {
        for bits in 1..=4 {
            assert_eq!(hilbert_coords(0, bits), [0, 0, 0]);
        }
    }

    #[test]
    fn locality_beats_row_major() {
        // Average spatial distance between curve-consecutive cells must be
        // 1 (perfect), whereas row-major wraps rows with long jumps.
        let bits = 3;
        let side = 1u32 << bits;
        let order = hilbert_order(bits);
        let hilbert_total: f64 = order
            .windows(2)
            .map(|w| {
                (0..3)
                    .map(|i| (w[0][i] as f64 - w[1][i] as f64).powi(2))
                    .sum::<f64>()
                    .sqrt()
            })
            .sum();
        let mut row_major = Vec::new();
        for z in 0..side {
            for y in 0..side {
                for x in 0..side {
                    row_major.push([x, y, z]);
                }
            }
        }
        let rm_total: f64 = row_major
            .windows(2)
            .map(|w| {
                (0..3)
                    .map(|i| (w[0][i] as f64 - w[1][i] as f64).powi(2))
                    .sum::<f64>()
                    .sqrt()
            })
            .sum();
        assert!(
            hilbert_total < rm_total,
            "hilbert {hilbert_total} vs row-major {rm_total}"
        );
    }

    #[test]
    #[should_panic(expected = "coordinate")]
    fn out_of_range_coord_panics() {
        let _ = hilbert_index([8, 0, 0], 3);
    }
}
