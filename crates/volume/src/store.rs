//! Dataset assembly: generator + chunk layout + declustering, with binary
//! chunk encoding and a lazy per-timestep field cache.
//!
//! A [`Dataset`] is what the read filters and the ADR baseline open: it
//! knows which chunks exist, which file (and therefore which disk) each
//! chunk lives in, how many bytes a chunk read costs, and produces the
//! actual chunk point data.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;

use crate::chunks::{ChunkId, ChunkInfo, ChunkLayout};
use crate::decluster::{hilbert_decluster, Declustering, FileId};
use crate::grid::{Dims, RectGrid};
use crate::parssim::{ParSSim, SimParams};

/// Binary encoding of one chunk: 3 × u32 LE point dims, then f32 LE data.
pub fn encode_chunk(grid: &RectGrid) -> Bytes {
    let mut out = BytesMut::with_capacity(12 + grid.data.len() * 4);
    out.extend_from_slice(&grid.dims.nx.to_le_bytes());
    out.extend_from_slice(&grid.dims.ny.to_le_bytes());
    out.extend_from_slice(&grid.dims.nz.to_le_bytes());
    for v in &grid.data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.freeze()
}

/// Decode a chunk produced by [`encode_chunk`].
///
/// Returns `None` on truncated or inconsistent input.
pub fn decode_chunk(bytes: &[u8]) -> Option<RectGrid> {
    if bytes.len() < 12 {
        return None;
    }
    let nx = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    let ny = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    let nz = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
    let dims = Dims::new(nx, ny, nz);
    let n = dims.points() as usize;
    if bytes.len() != 12 + n * 4 {
        return None;
    }
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        let off = 12 + i * 4;
        data.push(f32::from_le_bytes(bytes[off..off + 4].try_into().ok()?));
    }
    Some(RectGrid { dims, data })
}

/// A declustered, multi-timestep, multi-species scientific dataset.
///
/// Cheap to clone; the underlying generator and field cache are shared.
#[derive(Clone)]
pub struct Dataset {
    inner: Arc<DatasetInner>,
}

struct DatasetInner {
    sim: ParSSim,
    layout: ChunkLayout,
    decl: Declustering,
    /// Cache of full fields keyed by (species, timestep); generated lazily.
    cache: Mutex<HashMap<(u32, u32), Arc<RectGrid>>>,
}

impl Dataset {
    /// Build a dataset over `dims` points, split into `chunks` sub-volumes,
    /// declustered across `n_files` files (the paper uses 64).
    pub fn generate(dims: Dims, chunks: (u32, u32, u32), n_files: u32, seed: u64) -> Self {
        let layout = ChunkLayout::new(dims, chunks);
        let decl = hilbert_decluster(&layout, n_files);
        Dataset {
            inner: Arc::new(DatasetInner {
                sim: ParSSim::new(SimParams::new(dims, seed)),
                layout,
                decl,
                cache: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The chunk layout.
    pub fn layout(&self) -> &ChunkLayout {
        &self.inner.layout
    }

    /// The declustering map.
    pub fn declustering(&self) -> &Declustering {
        &self.inner.decl
    }

    /// Info for chunk `id`.
    pub fn chunk_info(&self, id: ChunkId) -> ChunkInfo {
        self.inner.layout.info(id)
    }

    /// File owning chunk `id`.
    pub fn file_of(&self, id: ChunkId) -> FileId {
        self.inner.decl.file_of_chunk[id.0 as usize]
    }

    /// Chunks stored in `file`, in Hilbert order.
    pub fn chunks_in_file(&self, file: FileId) -> &[ChunkId] {
        &self.inner.decl.chunks_of_file[file.0 as usize]
    }

    /// Bytes a read of chunk `id` moves off disk (header + f32 payload).
    pub fn chunk_bytes(&self, id: ChunkId) -> u64 {
        12 + self.chunk_info(id).byte_size()
    }

    /// Total bytes of one timestep of one species.
    pub fn timestep_bytes(&self) -> u64 {
        (0..self.inner.layout.count())
            .map(|i| self.chunk_bytes(ChunkId(i)))
            .sum()
    }

    /// Read chunk `id` of `species` at `timestep` (the actual point data;
    /// I/O *cost* is charged separately by the storage emulation).
    pub fn read_chunk(&self, species: u32, timestep: u32, id: ChunkId) -> RectGrid {
        let field = self.field(species, timestep);
        self.inner.layout.extract(&field, id)
    }

    /// The full field (cached) — used by tests and by reference renderings.
    pub fn field(&self, species: u32, timestep: u32) -> Arc<RectGrid> {
        let mut cache = self.inner.cache.lock();
        cache
            .entry((species, timestep))
            .or_insert_with(|| Arc::new(self.inner.sim.field(species, timestep)))
            .clone()
    }

    /// Drop cached fields (tests exercising regeneration determinism).
    pub fn clear_cache(&self) {
        self.inner.cache.lock().clear();
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::generate(Dims::new(9, 9, 9), (2, 2, 2), 4, 7)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let g = RectGrid::from_fn(Dims::new(3, 4, 5), |x, y, z| {
            x as f32 + y as f32 * 0.5 - z as f32
        });
        let bytes = encode_chunk(&g);
        assert_eq!(bytes.len() as u64, 12 + g.dims.byte_size());
        assert_eq!(decode_chunk(&bytes).unwrap(), g);
    }

    #[test]
    fn decode_rejects_truncated() {
        let g = RectGrid::filled(Dims::new(2, 2, 2), 1.0);
        let bytes = encode_chunk(&g);
        assert!(decode_chunk(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_chunk(&bytes[..4]).is_none());
    }

    #[test]
    fn decode_rejects_inconsistent_dims() {
        let g = RectGrid::filled(Dims::new(2, 2, 2), 1.0);
        let mut bytes = encode_chunk(&g).to_vec();
        bytes[0] = 3; // claim nx=3 without adding data
        assert!(decode_chunk(&bytes).is_none());
    }

    #[test]
    fn chunk_reads_match_direct_extraction() {
        let ds = tiny();
        let field = ds.field(1, 2);
        for i in 0..ds.layout().count() {
            let id = ChunkId(i);
            let via_read = ds.read_chunk(1, 2, id);
            let direct = ds.layout().extract(&field, id);
            assert_eq!(via_read, direct);
        }
    }

    #[test]
    fn chunk_bytes_accounts_header() {
        let ds = tiny();
        let id = ChunkId(0);
        let encoded = encode_chunk(&ds.read_chunk(0, 0, id));
        assert_eq!(ds.chunk_bytes(id), encoded.len() as u64);
    }

    #[test]
    fn cache_is_stable_across_clear() {
        let ds = tiny();
        let a = ds.read_chunk(0, 1, ChunkId(3));
        ds.clear_cache();
        let b = ds.read_chunk(0, 1, ChunkId(3));
        assert_eq!(a, b);
    }

    #[test]
    fn timestep_bytes_sums_chunks() {
        let ds = tiny();
        let manual: u64 = (0..8).map(|i| ds.chunk_bytes(ChunkId(i))).sum();
        assert_eq!(ds.timestep_bytes(), manual);
    }
}
