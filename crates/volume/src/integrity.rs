//! Data integrity and fault-injection seam for the on-disk store.
//!
//! Every record of a `.dcvf` data file carries an FNV-64 checksum of its
//! payload (written by [`crate::write_dataset`], verified by every read
//! path: [`crate::DiskStore::read_chunk`], [`crate::DiskStore::read_file`]
//! and the streaming [`crate::ChunkCursor`], which folds slab bytes into
//! a running digest and checks the trailer when a chunk completes). A
//! mismatch surfaces as a structured `InvalidData` error instead of a
//! silently wrong grid — so a cache fill from any of these paths is
//! checksum-verified data by construction.
//!
//! [`ReadFaults`] is the injection seam: a store can carry a hook that
//! injects read errors or flips bits in just-read payload bytes, letting
//! a fault plan exercise the exact same detection and error paths a real
//! failing disk would, deterministically. The seam is deliberately free
//! of any fault-plan vocabulary — implementors decide what "op `n`
//! fails" means — so this crate stays independent of the simulator.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// FNV-1a over `bytes` (64-bit). The xor-then-multiply step is injective
/// per input byte, so any single-bit flip of the hashed bytes changes
/// the digest — the property the corruption proptests pin.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Incremental FNV-1a (64-bit), for streaming readers that see a payload
/// in slices. `Fnv64::new().update(a).update(b).finish()` equals
/// [`fnv64`] over `a ++ b`.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(Self::BASIS)
    }

    /// Fold `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// The digest over everything folded so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Injected disk-read faults consulted by [`crate::DiskStore`] and
/// [`crate::ChunkCursor`] payload reads. Implementations must be pure
/// functions of the operation index (plus whatever seed they closed
/// over) so sim and native runs replay the same fault sequence.
pub trait ReadFaults: Send + Sync {
    /// Error to inject *instead of* performing read number `op`
    /// (`None` ⇒ perform the real read).
    fn read_error(&self, op: u64) -> Option<io::Error>;

    /// Bit index (into `len_bits`) to flip in the bytes read by
    /// operation `op` (`None` ⇒ leave the data intact). The flip happens
    /// after the physical read and before checksum verification, so an
    /// injected corruption is always *detected*, never decoded.
    fn corrupt_bit(&self, op: u64, len_bits: u64) -> Option<u64>;
}

/// Shared read-fault state of one store: the hook plus the monotonic
/// operation counter that keys it (shared with every cursor opened from
/// the store, so the op sequence is global per store).
#[derive(Clone, Default)]
pub(crate) struct FaultSeam {
    pub hook: Option<Arc<dyn ReadFaults>>,
    pub ops: Arc<AtomicU64>,
}

impl FaultSeam {
    /// Claim the next operation index.
    pub fn next_op(&self) -> u64 {
        self.ops.fetch_add(1, Ordering::Relaxed)
    }

    /// Injected error for `op`, if any.
    pub fn read_error(&self, op: u64) -> Option<io::Error> {
        self.hook.as_ref().and_then(|h| h.read_error(op))
    }

    /// Apply any injected bit-flip for `op` to `bytes`.
    pub fn tamper(&self, op: u64, bytes: &mut [u8]) {
        if let Some(h) = &self.hook {
            if let Some(bit) = h.corrupt_bit(op, bytes.len() as u64 * 8) {
                if let Some(byte) = bytes.get_mut((bit / 8) as usize) {
                    *byte ^= 1 << (bit % 8);
                }
            }
        }
    }
}

impl std::fmt::Debug for FaultSeam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultSeam")
            .field("hooked", &self.hook.is_some())
            .field("ops", &self.ops.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    #[test]
    fn incremental_digest_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).collect();
        for split in [0usize, 1, 7, 128, 255, 256] {
            let mut h = Fnv64::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), fnv64(&data), "split at {split}");
        }
    }

    #[test]
    fn any_single_bit_flip_changes_the_digest() {
        let data = b"heterogeneous storage".to_vec();
        let clean = fnv64(&data);
        for i in 0..data.len() * 8 {
            let mut t = data.clone();
            t[i / 8] ^= 1 << (i % 8);
            assert_ne!(fnv64(&t), clean, "bit {i} flip went undetected");
        }
    }

    #[test]
    fn seam_without_a_hook_is_inert() {
        let seam = FaultSeam::default();
        assert_eq!(seam.next_op(), 0);
        assert_eq!(seam.next_op(), 1);
        assert!(seam.read_error(0).is_none());
        let mut bytes = vec![0xAAu8; 8];
        seam.tamper(2, &mut bytes);
        assert_eq!(bytes, vec![0xAAu8; 8]);
    }

    #[test]
    fn seam_applies_hook_verdicts() {
        struct EveryOther;
        impl ReadFaults for EveryOther {
            fn read_error(&self, op: u64) -> Option<io::Error> {
                op.is_multiple_of(2).then(|| io::Error::other("injected"))
            }
            fn corrupt_bit(&self, _op: u64, len_bits: u64) -> Option<u64> {
                Some(len_bits - 1)
            }
        }
        let seam = FaultSeam {
            hook: Some(Arc::new(EveryOther)),
            ops: Arc::default(),
        };
        assert!(seam.read_error(0).is_some());
        assert!(seam.read_error(1).is_none());
        let mut bytes = vec![0u8; 2];
        seam.tamper(0, &mut bytes);
        assert_eq!(bytes, vec![0, 0x80], "top bit of the last byte flipped");
    }
}
