//! Run-wide shared chunk cache with CLOCK eviction.
//!
//! Declustered chunks touched by overlapping ROI / tile ranges — and by
//! repeated queries against one resident dataset — should be read from
//! disk **once**. The cache holds decoded chunk grids behind `Arc`s keyed
//! by `(species, timestep, chunk)`, bounded by a byte capacity, and evicts
//! with the CLOCK (second-chance) policy: an approximation of LRU that
//! needs no per-access list surgery, just a referenced bit flipped on hit
//! and swept by a rotating hand on eviction.
//!
//! A hit hands back an `Arc` clone — zero data copies, zero allocations —
//! which is what lets a warm-cache delivery path stay allocation-free
//! (see the counting-allocator proof in the framework's test suite). The
//! cache is `Sync`; one instance is shared by every reader copy of a run
//! (and, eventually, by every query of the multi-tenant service).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::chunks::ChunkId;
use crate::grid::RectGrid;

/// Cache key: one chunk of one (species, timestep) field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Species index.
    pub species: u32,
    /// Timestep index.
    pub timestep: u32,
    /// The chunk.
    pub chunk: ChunkId,
}

/// Counter snapshot of a [`ChunkCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls served from the cache.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries accepted by `insert`.
    pub insertions: u64,
    /// Bytes currently resident.
    pub resident_bytes: u64,
    /// Configured capacity in bytes.
    pub capacity_bytes: u64,
}

impl CacheStats {
    /// Total lookups (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let l = self.lookups();
        if l == 0 {
            0.0
        } else {
            self.hits as f64 / l as f64
        }
    }
}

struct Slot {
    key: CacheKey,
    grid: Arc<RectGrid>,
    bytes: u64,
    referenced: bool,
}

struct CacheState {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    hand: usize,
    resident: u64,
}

/// Byte-capacity-bounded chunk cache with CLOCK eviction. See the module
/// docs.
pub struct ChunkCache {
    capacity: u64,
    st: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

impl ChunkCache {
    /// A cache holding at most `capacity_bytes` of decoded chunk data.
    pub fn new(capacity_bytes: u64) -> Arc<ChunkCache> {
        Arc::new(ChunkCache {
            capacity: capacity_bytes,
            st: Mutex::new(CacheState {
                map: HashMap::new(),
                slots: Vec::new(),
                free: Vec::new(),
                hand: 0,
                resident: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        })
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Look `key` up, marking it recently used on a hit. The returned
    /// `Arc` clone shares the cached grid — no copy, no allocation.
    pub fn get(&self, key: CacheKey) -> Option<Arc<RectGrid>> {
        let mut st = self.st.lock();
        let hit = st
            .map
            .get(&key)
            .copied()
            .and_then(|i| st.slots.get_mut(i))
            .and_then(|s| s.as_mut())
            .map(|slot| {
                slot.referenced = true;
                slot.grid.clone()
            });
        drop(st);
        match hit {
            Some(grid) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(grid)
            }
            // A mapping to a vacated slot would land here too — counted
            // as a miss rather than a panic (the caller just re-reads).
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert `grid` under `key`, evicting via CLOCK until it fits.
    /// Returns `false` (and caches nothing) when the entry alone exceeds
    /// the whole capacity; re-inserting an existing key refreshes it.
    pub fn insert(&self, key: CacheKey, grid: Arc<RectGrid>) -> bool {
        let bytes = grid.dims.byte_size();
        if bytes > self.capacity {
            return false;
        }
        let mut st = self.st.lock();
        if let Some(&i) = st.map.get(&key) {
            // A refresh may grow the entry past what fits alongside the
            // other residents: drop the old entry and fall through to the
            // fresh-insert path, which evicts until the new size fits. A
            // mapping to an already-vacant slot only needs unmapping.
            if let Some(old) = st.slots.get_mut(i).and_then(Option::take) {
                st.resident -= old.bytes;
            }
            st.free.push(i);
            st.map.remove(&key);
        }
        let mut evicted = 0u64;
        while st.resident + bytes > self.capacity {
            self.evict_one(&mut st);
            evicted += 1;
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        let idx = match st.free.pop() {
            Some(i) => i,
            None => {
                st.slots.push(None);
                st.slots.len() - 1
            }
        };
        st.slots[idx] = Some(Slot {
            key,
            grid,
            bytes,
            referenced: true,
        });
        st.map.insert(key, idx);
        st.resident += bytes;
        self.insertions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// CLOCK sweep: rotate the hand, clearing referenced bits, until an
    /// unreferenced occupied slot is found; evict it. Terminates because
    /// each occupied slot's bit is cleared at most once per sweep.
    fn evict_one(&self, st: &mut CacheState) {
        debug_assert!(st.resident > 0, "evict called on an empty cache");
        loop {
            let n = st.slots.len();
            let i = st.hand % n.max(1);
            st.hand = (i + 1) % n.max(1);
            let Some(slot) = st.slots[i].as_mut() else {
                continue;
            };
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            let key = slot.key;
            let bytes = slot.bytes;
            st.slots[i] = None;
            st.free.push(i);
            st.map.remove(&key);
            st.resident -= bytes;
            return;
        }
    }

    /// Counter snapshot (consistent enough for reporting; counters are
    /// independently atomic).
    pub fn stats(&self) -> CacheStats {
        let resident = self.st.lock().resident;
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            resident_bytes: resident,
            capacity_bytes: self.capacity,
        }
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.st.lock().resident
    }
}

impl std::fmt::Debug for ChunkCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ChunkCache")
            .field("capacity_bytes", &s.capacity_bytes)
            .field("resident_bytes", &s.resident_bytes)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use crate::grid::Dims;

    fn grid(n: u32) -> Arc<RectGrid> {
        Arc::new(RectGrid::filled(Dims::new(n, n, n), 1.0))
    }

    fn key(c: u32) -> CacheKey {
        CacheKey {
            species: 0,
            timestep: 0,
            chunk: ChunkId(c),
        }
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = ChunkCache::new(1 << 20);
        assert!(cache.get(key(1)).is_none());
        cache.insert(key(1), grid(4));
        assert!(cache.get(key(1)).is_some());
        assert!(cache.get(key(2)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
        assert_eq!(s.lookups(), 3);
        assert_eq!(s.resident_bytes, Dims::new(4, 4, 4).byte_size());
    }

    #[test]
    fn capacity_is_respected_via_clock_eviction() {
        let one = Dims::new(4, 4, 4).byte_size();
        let cache = ChunkCache::new(one * 2);
        cache.insert(key(1), grid(4));
        cache.insert(key(2), grid(4));
        assert_eq!(cache.resident_bytes(), one * 2);
        // Third entry forces an eviction; resident never exceeds capacity.
        cache.insert(key(3), grid(4));
        let s = cache.stats();
        assert_eq!(s.resident_bytes, one * 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.insertions, 3);
    }

    #[test]
    fn clock_gives_recently_used_entries_a_second_chance() {
        let one = Dims::new(4, 4, 4).byte_size();
        let cache = ChunkCache::new(one * 3);
        cache.insert(key(1), grid(4));
        cache.insert(key(2), grid(4));
        cache.insert(key(3), grid(4));
        // Full: this sweep clears every referenced bit and evicts key 1
        // (first unreferenced slot the hand finds on its second lap).
        cache.insert(key(4), grid(4));
        assert!(cache.get(key(1)).is_none(), "oldest entry evicted");
        // Key 2 is now the first slot ahead of the hand with a clear bit —
        // next in line for eviction. Touch it: the hand must skip it and
        // take key 3 instead.
        assert!(cache.get(key(2)).is_some());
        cache.insert(key(5), grid(4));
        assert!(
            cache.get(key(2)).is_some(),
            "referenced entry got its second chance"
        );
        assert!(cache.get(key(3)).is_none(), "unreferenced entry evicted");
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let cache = ChunkCache::new(16);
        assert!(!cache.insert(key(1), grid(8)));
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let cache = ChunkCache::new(1 << 20);
        cache.insert(key(1), grid(4));
        cache.insert(key(1), grid(5));
        let s = cache.stats();
        assert_eq!(s.resident_bytes, Dims::new(5, 5, 5).byte_size());
        let g = cache.get(key(1)).unwrap();
        assert_eq!(g.dims, Dims::new(5, 5, 5));
    }

    #[test]
    fn refresh_growth_evicts_instead_of_overshooting_capacity() {
        let small = Dims::new(4, 4, 4).byte_size();
        let large = Dims::new(6, 6, 6).byte_size();
        let cache = ChunkCache::new(large);
        cache.insert(key(1), grid(4));
        cache.insert(key(2), grid(4));
        assert_eq!(cache.resident_bytes(), small * 2);
        // Growing key 1 to the full capacity must evict key 2, not push
        // resident past the bound.
        assert!(cache.insert(key(1), grid(6)));
        let s = cache.stats();
        assert!(s.resident_bytes <= s.capacity_bytes);
        assert_eq!(cache.get(key(1)).unwrap().dims, Dims::new(6, 6, 6));
        assert!(cache.get(key(2)).is_none(), "smaller entry was evicted");
    }

    #[test]
    fn hits_share_the_arc_without_copying() {
        let cache = ChunkCache::new(1 << 20);
        let g = grid(4);
        cache.insert(key(1), g.clone());
        let h = cache.get(key(1)).unwrap();
        assert!(Arc::ptr_eq(&g, &h), "hit is the same allocation");
    }
}
