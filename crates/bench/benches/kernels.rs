//! Criterion micro-benchmarks of the computational kernels: surface
//! extraction, rasterization, hidden-surface merging, Hilbert indexing,
//! and synthetic field generation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use isosurf::{Camera, Material, Triangle, ZBuffer};
use volume::{hilbert_coords, hilbert_index, Dims, RectGrid};

fn sphere(n: u32, r: f32) -> RectGrid {
    let c = (n - 1) as f32 / 2.0;
    RectGrid::from_fn(Dims::new(n, n, n), |x, y, z| {
        let dx = x as f32 - c;
        let dy = y as f32 - c;
        let dz = z as f32 - c;
        r - (dx * dx + dy * dy + dz * dz).sqrt()
    })
}

fn extract_triangles(g: &RectGrid) -> Vec<Triangle> {
    let mut tris = Vec::new();
    isosurf::extract(g, (0, 0, 0), 0.0, &mut tris);
    tris
}

fn bench_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract");
    for n in [17u32, 33, 65] {
        let g = sphere(n, (n as f32) / 3.0);
        group.throughput(Throughput::Elements(g.dims.cells()));
        group.bench_function(format!("marching_cubes_{n}^3"), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                isosurf::extract(black_box(&g), (0, 0, 0), 0.0, &mut out);
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_raster(c: &mut Criterion) {
    let g = sphere(33, 11.0);
    let tris = extract_triangles(&g);
    let mut group = c.benchmark_group("raster");
    group.throughput(Throughput::Elements(tris.len() as u64));
    for res in [256u32, 1024] {
        let cam = Camera::framing(g.dims, res, res);
        let proj = cam.projector();
        let m = Material::default();
        group.bench_function(format!("zbuffer_{res}px"), |b| {
            b.iter(|| {
                let mut zb = ZBuffer::new(res, res);
                let mut px = 0u64;
                for t in &tris {
                    if let Some(p) =
                        isosurf::raster_triangle(&proj, res, res, &m, t, |x, y, d, rgb| {
                            zb.plot(x, y, d, rgb);
                        })
                    {
                        px += p;
                    }
                }
                px
            })
        });
        group.bench_function(format!("active_pixel_{res}px"), |b| {
            b.iter(|| {
                let mut ap = isosurf::ActivePixelBuffer::new(res, 4096);
                let mut target = ZBuffer::new(res, res);
                let mut sink = |batch: Vec<isosurf::WinningPixel>| {
                    isosurf::merge_batch(&mut target, &batch);
                };
                for t in &tris {
                    let _ = isosurf::raster_triangle(&proj, res, res, &m, t, |x, y, d, rgb| {
                        ap.plot(x, y, d, rgb, &mut sink);
                    });
                }
                ap.force_flush(&mut sink);
                target.active_pixels()
            })
        });
    }
    group.finish();
}

fn bench_zbuffer_merge(c: &mut Criterion) {
    let mut a = ZBuffer::new(512, 512);
    let mut b2 = ZBuffer::new(512, 512);
    for i in 0..512u32 {
        for j in (0..512u32).step_by(3) {
            a.plot(j, i, (i + j) as f32, [1, 2, 3]);
            b2.plot(j, i, (i * 2 + j) as f32 * 0.5, [4, 5, 6]);
        }
    }
    let mut group = c.benchmark_group("merge");
    group.throughput(Throughput::Elements(512 * 512));
    group.bench_function("zbuffer_merge_512", |b| {
        b.iter(|| {
            let mut t = a.clone();
            t.merge(black_box(&b2));
            t.active_pixels()
        })
    });
    group.finish();
}

fn bench_hilbert(c: &mut Criterion) {
    let mut group = c.benchmark_group("hilbert");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("encode_16^3", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for z in 0..16u32 {
                for y in 0..16u32 {
                    for x in 0..16u32 {
                        acc ^= hilbert_index(black_box([x, y, z]), 4);
                    }
                }
            }
            acc
        })
    });
    group.bench_function("decode_16^3", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..4096u64 {
                let c3 = hilbert_coords(black_box(i), 4);
                acc ^= c3[0] ^ c3[1] ^ c3[2];
            }
            acc
        })
    });
    group.finish();
}

fn bench_parssim(c: &mut Criterion) {
    let sim = volume::ParSSim::new(volume::SimParams::new(Dims::new(33, 33, 33), 7));
    let mut group = c.benchmark_group("parssim");
    group.throughput(Throughput::Elements(33 * 33 * 33));
    group.bench_function("field_33^3", |b| {
        b.iter(|| sim.field(black_box(0), black_box(3)).data.len())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_extract,
    bench_raster,
    bench_zbuffer_merge,
    bench_hilbert,
    bench_parssim
}
criterion_main!(benches);
