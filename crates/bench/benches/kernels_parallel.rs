//! Serial vs data-parallel render kernels across thread counts.
//!
//! Sweeps explicit `ThreadPool`s of 1/2/4/8 lanes over the three
//! parallelized kernels — marching-cubes extraction (z-slab decomposition),
//! pairwise z-buffer merge (row bands), and the many-buffer tree reduction —
//! against their serial baselines, and writes the medians to
//! `BENCH_kernels.json` at the workspace root for the experiment log.
//!
//! Speedups only materialize on multi-core hosts; on a single-CPU
//! container the parallel variants measure pure pool overhead (and the
//! global pool sizes itself to 1, keeping production paths serial).

use criterion::{black_box, criterion_group, Criterion, Throughput};

use isosurf::{extract_serial, extract_with, ExtractScratch, ThreadPool, ZBuffer};
use volume::{Dims, RectGrid};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn sphere(n: u32, r: f32) -> RectGrid {
    let c = (n - 1) as f32 / 2.0;
    RectGrid::from_fn(Dims::new(n, n, n), |x, y, z| {
        let dx = x as f32 - c;
        let dy = y as f32 - c;
        let dz = z as f32 - c;
        r - (dx * dx + dy * dy + dz * dz).sqrt()
    })
}

fn noisy_zbuffer(w: u32, h: u32, seed: u64) -> ZBuffer {
    let mut zb = ZBuffer::new(w, h);
    let mut s = seed | 1;
    for _ in 0..(w as u64 * h as u64) {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = s >> 16;
        zb.plot(
            (r % w as u64) as u32,
            ((r >> 12) % h as u64) as u32,
            ((r >> 24) % 1024) as f32,
            [r as u8, (r >> 8) as u8, (r >> 16) as u8],
        );
    }
    zb
}

fn bench_extract_threads(c: &mut Criterion) {
    let g = sphere(65, 21.0);
    let mut group = c.benchmark_group("extract_par");
    group.throughput(Throughput::Elements(g.dims.cells()));
    group.bench_function("serial_65^3", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            extract_serial(black_box(&g), (0, 0, 0), 0.0, &mut out);
            out.len()
        })
    });
    for t in THREADS {
        let pool = ThreadPool::new(t);
        let mut scratch = ExtractScratch::default();
        group.bench_function(format!("{t}_threads_65^3"), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                extract_with(&pool, &mut scratch, black_box(&g), (0, 0, 0), 0.0, &mut out);
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_merge_threads(c: &mut Criterion) {
    let (w, h) = (1024u32, 1024u32);
    let base = noisy_zbuffer(w, h, 1);
    let other = noisy_zbuffer(w, h, 2);
    let mut group = c.benchmark_group("merge_par");
    group.throughput(Throughput::Elements(w as u64 * h as u64));
    group.bench_function("serial_1024px", |b| {
        b.iter(|| {
            let mut zb = base.clone();
            zb.merge_serial(black_box(&other));
            zb.depth[0]
        })
    });
    for t in THREADS {
        let pool = ThreadPool::new(t);
        group.bench_function(format!("{t}_threads_1024px"), |b| {
            b.iter(|| {
                let mut zb = base.clone();
                zb.merge_with(&pool, black_box(&other));
                zb.depth[0]
            })
        });
    }
    group.finish();
}

fn bench_merge_many_threads(c: &mut Criterion) {
    let (w, h, n) = (512u32, 512u32, 16usize);
    let bufs: Vec<ZBuffer> = (0..n).map(|i| noisy_zbuffer(w, h, i as u64 + 1)).collect();
    let mut group = c.benchmark_group("merge_many_par");
    group.throughput(Throughput::Elements(w as u64 * h as u64 * (n as u64 - 1)));
    group.bench_function(format!("serial_fold_{n}x512px"), |b| {
        b.iter(|| {
            let mut set = bufs.clone();
            isosurf::merge_many_serial(black_box(&mut set));
            set[0].depth[0]
        })
    });
    for t in THREADS {
        let pool = ThreadPool::new(t);
        group.bench_function(format!("{t}_threads_tree_{n}x512px"), |b| {
            b.iter(|| {
                let mut set = bufs.clone();
                isosurf::merge_many_with(&pool, black_box(&mut set));
                set[0].depth[0]
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
        .sample_size(15);
    targets = bench_extract_threads, bench_merge_threads, bench_merge_many_threads
}

fn main() {
    let c = benches();
    let mut json = String::from("[\n");
    for (i, r) in c.results().iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "  {{\"id\": \"{}\", \"median_ns\": {:.1}}}",
            r.id, r.median_ns
        ));
    }
    json.push_str("\n]\n");
    // `cargo bench` runs with cwd = the package dir; anchor on the
    // manifest so the log lands at the workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    }
}
