//! Criterion benchmarks of the framework itself: engine event dispatch,
//! virtual channels, writer policies, and a small end-to-end pipeline.
//! These measure the *wall-clock* cost of the emulation machinery (how
//! fast experiments run), not virtual time.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use datacutter::{
    DataBuffer, Filter, FilterCtx, FilterError, GraphBuilder, Placement, Run, WritePolicy,
};
use hetsim::{
    channel, ClusterSpec, Env, HostId, HostSpec, SimDuration, Simulation, TopologyBuilder,
};

fn bench_engine_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("delay_events_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.spawn("ticker", |env: Env| {
                for _ in 0..10_000u32 {
                    env.delay(SimDuration::from_nanos(10));
                }
            });
            sim.run().unwrap().events
        })
    });
    group.bench_function("two_process_pingpong_5k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let (tx_a, rx_a) = channel::<u32>(sim.waker(), 1);
            let (tx_b, rx_b) = channel::<u32>(sim.waker(), 1);
            sim.spawn("ping", move |env: Env| {
                for i in 0..5_000u32 {
                    tx_a.send(&env, i).unwrap();
                    let _ = rx_b.recv(&env);
                }
            });
            sim.spawn("pong", move |env: Env| {
                while let Some(v) = rx_a.recv(&env) {
                    if tx_b.send(&env, v).is_err() {
                        break;
                    }
                }
            });
            sim.run().unwrap().events
        })
    });
    group.finish();
}

struct Src(u32);
impl Filter for Src {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        for i in 0..self.0 {
            ctx.write(0, DataBuffer::new(i, 1024));
        }
        Ok(())
    }
}
struct Work;
impl Filter for Work {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        while let Some(b) = ctx.read(0) {
            let v = b.downcast::<u32>();
            ctx.compute(SimDuration::from_micros(100));
            ctx.write(0, DataBuffer::new(v, 1024));
        }
        Ok(())
    }
}
struct Snk;
impl Filter for Snk {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        while let Some(b) = ctx.read(0) {
            black_box(b.downcast::<u32>());
        }
        Ok(())
    }
}

fn small_topology(n: usize) -> (hetsim::Topology, Vec<HostId>) {
    let mut b = TopologyBuilder::new();
    let c = b.add_cluster(ClusterSpec {
        name: "c".into(),
        nic_bandwidth_bps: 100.0e6,
        nic_latency: SimDuration::from_micros(50),
    });
    let hosts = (0..n)
        .map(|i| {
            b.add_host(
                c,
                HostSpec {
                    name: format!("h{i}"),
                    cores: 2,
                    speed: 1.0,
                    mem_mb: 512,
                    disks: 1,
                    disk_bandwidth_bps: 30.0e6,
                    disk_seek: SimDuration::from_millis(5),
                },
            )
        })
        .collect();
    (b.build(), hosts)
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    for policy in [WritePolicy::RoundRobin, WritePolicy::demand_driven()] {
        group.throughput(Throughput::Elements(500));
        group.bench_function(format!("3_stage_500_buffers_{}", policy.label()), |b| {
            b.iter(|| {
                let (topo, hosts) = small_topology(4);
                let mut g = GraphBuilder::new();
                let s = g.add_filter("src", Placement::on_host(hosts[0], 1), |_| Src(500));
                let w = g.add_filter(
                    "work",
                    Placement::one_per_host(&[hosts[1], hosts[2]]),
                    |_| Work,
                );
                let k = g.add_filter("snk", Placement::on_host(hosts[3], 1), |_| Snk);
                g.connect(s, w, policy);
                g.connect(w, k, WritePolicy::RoundRobin);
                Run::new(g.build()).go(&topo).unwrap().events
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(20);
    targets = bench_engine_dispatch, bench_pipeline
}
criterion_main!(benches);
