//! Plain-text table rendering for the experiment binaries.

/// A simple left-padded text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==\n{}", self.render());
    }
}

/// Format seconds with 2 decimals.
pub fn secs(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a ratio with 2 decimals.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}")
}

/// Format megabytes with 1 decimal.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with('1'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(mb(2_500_000), "2.5");
        assert_eq!(ratio(0.5), "0.50");
    }
}
