//! Shared run helpers for the experiment binaries.

use std::sync::Arc;

use dcapp::{AppConfig, PipelineResult, PipelineSpec, SharedConfig};
use hetsim::{HostId, Topology};
use volume::Dataset;

use crate::datasets::{timesteps, ISO};

/// How much of each experiment to run (timesteps averaged per cell).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Timesteps averaged per experiment cell.
    pub timesteps: u32,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale {
            timesteps: timesteps(),
        }
    }
}

/// Build the standard experiment config: `dataset` striped across
/// `storage_hosts` with `disks_per_node` disks, rendered at
/// `image × image`.
pub fn make_cfg(
    dataset: Dataset,
    storage_hosts: Vec<HostId>,
    disks_per_node: u32,
    image: u32,
) -> SharedConfig {
    let mut cfg = AppConfig::new(dataset, storage_hosts, disks_per_node, image, image);
    cfg.iso = ISO;
    Arc::new(cfg)
}

/// Run the DataCutter pipeline over the scale's timesteps and return the
/// average elapsed seconds (plus the per-timestep results).
pub fn dc_avg(
    topo: &Topology,
    cfg: &SharedConfig,
    spec: &PipelineSpec,
    scale: ExperimentScale,
) -> (f64, Vec<PipelineResult>) {
    let results =
        dcapp::run_timesteps(topo, cfg, spec, 0..scale.timesteps).expect("pipeline run failed");
    (dcapp::avg_elapsed_secs(&results), results)
}

/// Run the ADR baseline over the scale's timesteps; average elapsed
/// seconds plus per-timestep results.
pub fn adr_avg(
    topo: &Topology,
    cfg: &SharedConfig,
    scale: ExperimentScale,
) -> (f64, Vec<adr::AdrResult>) {
    let results = adr::run_adr_timesteps(topo, cfg, 0..scale.timesteps).expect("ADR run failed");
    (adr::avg_elapsed_secs(&results), results)
}

/// Apply `jobs` background jobs to each host in `hosts`.
pub fn load_hosts(topo: &Topology, hosts: &[HostId], jobs: u32) {
    for &h in hosts {
        topo.host(h).cpu.set_bg_jobs(jobs);
    }
}
