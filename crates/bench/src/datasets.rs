//! Reference datasets for the experiments — scaled-down analogues of the
//! paper's ParSSim outputs with the same structure (equal sub-volumes,
//! 64 Hilbert-declustered data files, multiple species and timesteps).

use volume::{Dataset, Dims};

/// Number of data files, as in the paper.
pub const N_FILES: u32 = 64;

/// Timesteps averaged per experiment cell. The paper averages 5; the
/// default here keeps the full suite fast — override with the
/// `DC_TIMESTEPS` environment variable.
pub const QUICK_TIMESTEPS: u32 = 2;

/// Timesteps to average, honoring `DC_TIMESTEPS`.
pub fn timesteps() -> u32 {
    std::env::var("DC_TIMESTEPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t: &u32| (1..=10).contains(&t))
        .unwrap_or(QUICK_TIMESTEPS)
}

/// Analogue of the paper's 1.5 GB dataset (256×256×1024 grid, 1536
/// sub-volumes): 64×64×128 cells in 128 sub-volumes.
pub fn small_dataset() -> Dataset {
    Dataset::generate(Dims::new(65, 65, 129), (4, 4, 8), N_FILES, 0x5eed_0001)
}

/// Analogue of the paper's 25 GB dataset (1024³ grid, 24576 sub-volumes):
/// 96×96×192 cells in 432 sub-volumes.
pub fn large_dataset() -> Dataset {
    Dataset::generate(Dims::new(97, 97, 193), (6, 6, 12), N_FILES, 0x5eed_0002)
}

/// Isovalue used throughout the experiments (mid-range for the synthetic
/// plume fields).
pub const ISO: f32 = 0.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_have_expected_chunk_counts() {
        assert_eq!(small_dataset().layout().count(), 128);
        assert_eq!(large_dataset().layout().count(), 432);
    }

    #[test]
    fn files_are_64() {
        assert_eq!(small_dataset().declustering().n_files, 64);
    }

    #[test]
    fn isosurface_is_nonempty_on_both() {
        for ds in [small_dataset(), large_dataset()] {
            let f = ds.field(0, 0);
            let above = f.data.iter().filter(|&&v| v > ISO).count();
            assert!(above > 0 && above < f.data.len());
        }
    }
}
