//! **Table 3** — average number of buffers received per Raster filter per
//! node class over the E→Ra stream under the Demand Driven policy, in the
//! Figure 5 heterogeneous setting (Rogue nodes loaded, Blue dedicated).
//!
//! Paper shape: as background jobs grow, DD redirects buffers away from
//! the loaded Rogue raster copies toward the dedicated Blue copies; the
//! shift is stronger for the 2048² image (more raster work per buffer).

use bench::{dc_avg, large_dataset, load_hosts, make_cfg, ExperimentScale, Table};
use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::presets::rogue_blue_mix;

fn main() {
    let scale = ExperimentScale { timesteps: 1 };
    let ds = large_dataset();
    let mut shape_ok = true;

    for n_each in [2usize, 4, 8] {
        let mut t = Table::new(&["bg", "alg", "image", "rogue avg", "blue avg", "blue/rogue"]);
        let mut shift = Vec::new();
        for bg in [0u32, 1, 4, 16] {
            for alg in [Algorithm::ZBuffer, Algorithm::ActivePixel] {
                for image in [512u32, 2048] {
                    let (topo, rogues, blues) = rogue_blue_mix(n_each);
                    let mut hosts = rogues.clone();
                    hosts.extend(&blues);
                    let cfg = {
                        // Finer triangle batches: the paper's stream carried
                        // thousands of buffers; keep enough granularity for
                        // the per-class counts to resolve at 8+8 nodes.
                        let base = make_cfg(ds.clone(), hosts.clone(), 2, image);
                        let mut c = dcapp::clone_config(&base);
                        c.tri_batch = 96;
                        std::sync::Arc::new(c)
                    };
                    load_hosts(&topo, &rogues, bg);
                    let spec = PipelineSpec {
                        grouping: Grouping::RERaSplit {
                            raster: Placement::one_per_host(&hosts),
                        },
                        algorithm: alg,
                        policy: WritePolicy::demand_driven(),
                        merge_host: blues[0],
                    };
                    let (_, results) = dc_avg(&topo, &cfg, &spec, scale);
                    let r = &results[0];
                    let stream = r.to_raster.expect("RE-Ra-M has a raster stream");
                    let rogue_set: std::collections::HashSet<_> = rogues.iter().copied().collect();
                    let avg = r.report.avg_buffers_by_class(
                        stream,
                        |h| if rogue_set.contains(&h) { 0 } else { 1 },
                        2,
                    );
                    if image == 2048 && alg == Algorithm::ActivePixel {
                        shift.push(avg[1] / avg[0].max(1.0));
                    }
                    t.row(vec![
                        bg.to_string(),
                        alg.label().to_string(),
                        image.to_string(),
                        format!("{:.0}", avg[0]),
                        format!("{:.0}", avg[1]),
                        format!("{:.2}", avg[1] / avg[0].max(1.0)),
                    ]);
                }
            }
        }
        t.print(&format!(
            "Table 3: avg buffers received per Raster copy per node class, {n_each} Rogue + {n_each} Blue (DD)"
        ));
        // blue/rogue ratio must grow monotonically-ish with bg at 2048/AP.
        if *shift.last().unwrap() <= shift[0] * 1.5 {
            shape_ok = false;
            println!("NOTE: shift did not grow with load: {shift:?}");
        }
    }
    println!(
        "\nshape check (DD shifts buffers from loaded Rogue to dedicated Blue): {}",
        if shape_ok { "OK" } else { "CHECK NOTES" }
    );
}
