//! **Table 1** — number of buffers and data volume (MB) transferred
//! between filters for the Z-buffer and Active Pixel implementations.
//!
//! Setup (paper §4.1): the four filters isolated, each on its own host,
//! pipeline fashion, small dataset, 2048×2048 output image.

use bench::{make_cfg, small_dataset, Table};
use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::presets::rogue_cluster;
use volume::FilePlacement;

fn main() {
    let (topo, hosts) = rogue_cluster(4);
    // All data on host 0; E, Ra, M on hosts 1, 2, 3.
    let cfg = {
        let base = make_cfg(small_dataset(), vec![hosts[0]], 2, 2048);
        let mut c = dcapp::clone_config(&base);
        c.placement = FilePlacement::balanced(64, 1, 2);
        std::sync::Arc::new(c)
    };

    let run = |alg: Algorithm| {
        let spec = PipelineSpec {
            grouping: Grouping::FourStage {
                extract: Placement::on_host(hosts[1], 1),
                raster: Placement::on_host(hosts[2], 1),
            },
            algorithm: alg,
            policy: WritePolicy::RoundRobin,
            merge_host: hosts[3],
        };
        dcapp::run_pipeline(&topo, &cfg, &spec).expect("run failed")
    };

    let zb = run(Algorithm::ZBuffer);
    let ap = run(Algorithm::ActivePixel);

    let mut t = Table::new(&["stream", "ZB #bufs", "ZB MB", "AP #bufs", "AP MB"]);
    for (i, label) in ["R->E", "E->Ra", "Ra->M"].iter().enumerate() {
        let sid = datacutter::StreamId(i as u32);
        let (z, a) = (zb.report.stream(sid), ap.report.stream(sid));
        t.row(vec![
            label.to_string(),
            z.total_buffers().to_string(),
            format!("{:.1}", z.total_bytes() as f64 / 1e6),
            a.total_buffers().to_string(),
            format!("{:.1}", a.total_bytes() as f64 / 1e6),
        ]);
    }
    t.print("Table 1: buffers and data volume between filters (R-E-Ra-M, 2048x2048)");

    println!(
        "paper shape: identical R->E and E->Ra; Ra->M has FEW large buffers under \
         Z-buffer vs MANY small buffers (lower total MB) under Active Pixel"
    );
    let sid = datacutter::StreamId(2);
    let zbm = zb.report.stream(sid);
    let apm = ap.report.stream(sid);
    assert!(
        apm.total_buffers() > zbm.total_buffers(),
        "AP should send more Ra->M buffers"
    );
    assert!(
        apm.total_bytes() < zbm.total_bytes(),
        "AP should move fewer Ra->M bytes"
    );
    println!("shape check: OK");
}
