//! **Table 4** — execution time for the three filter groupings under
//! background load, for RR vs DD, both algorithms, both image sizes.
//!
//! Setup (paper §4.3): 8 Rogue nodes; every node runs one copy of each
//! filter; the merge runs on the last node, which carries no background
//! load; background jobs run on 4 of the remaining nodes.
//!
//! Paper shapes: DD beats RR and the gap widens with load; RERa–M shows
//! little DD benefit (nothing to redistribute); RE–Ra–M is usually best;
//! the z-buffer algorithm collapses at 2048².

use bench::{dc_avg, large_dataset, make_cfg, ExperimentScale, Table};
use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::presets::rogue_cluster;

fn main() {
    let scale = ExperimentScale::default();
    let ds = large_dataset();

    type GroupingFor = Box<dyn Fn(&[hetsim::HostId]) -> Grouping>;
    let groupings: Vec<(&str, GroupingFor)> = vec![
        ("RERa-M", Box::new(|_h: &[hetsim::HostId]| Grouping::RERaM)),
        (
            "RE-Ra-M",
            Box::new(|h: &[hetsim::HostId]| Grouping::RERaSplit {
                raster: Placement::one_per_host(h),
            }),
        ),
        (
            "R-ERa-M",
            Box::new(|h: &[hetsim::HostId]| Grouping::REraSplit {
                era: Placement::one_per_host(h),
            }),
        ),
    ];

    for image in [512u32, 2048] {
        for alg in [Algorithm::ActivePixel, Algorithm::ZBuffer] {
            let mut t = Table::new(&["bg", "config", "RR", "DD", "DD gain"]);
            let mut dd_gain_at_16 = Vec::new();
            for bg in [0u32, 1, 4, 16] {
                for (label, mk_grouping) in &groupings {
                    let mut times = Vec::new();
                    for policy in [WritePolicy::RoundRobin, WritePolicy::demand_driven()] {
                        let (topo, hosts) = rogue_cluster(8);
                        // bg jobs on 4 of the 7 non-merge nodes.
                        for &h in &hosts[..4] {
                            topo.host(h).cpu.set_bg_jobs(bg);
                        }
                        let cfg = make_cfg(ds.clone(), hosts.clone(), 2, image);
                        let spec = PipelineSpec {
                            grouping: mk_grouping(&hosts),
                            algorithm: alg,
                            policy,
                            merge_host: hosts[7],
                        };
                        let (secs, _) = dc_avg(&topo, &cfg, &spec, scale);
                        times.push(secs);
                    }
                    if bg == 16 && *label != "RERa-M" {
                        dd_gain_at_16.push(times[0] / times[1]);
                    }
                    t.row(vec![
                        bg.to_string(),
                        label.to_string(),
                        format!("{:.2}", times[0]),
                        format!("{:.2}", times[1]),
                        format!("{:.2}x", times[0] / times[1]),
                    ]);
                }
            }
            t.print(&format!(
                "Table 4: execution time (s), 8 Rogue nodes, bg on 4 nodes — {} {}x{}",
                alg.label(),
                image,
                image
            ));
            let ok = dd_gain_at_16.iter().all(|&g| g > 1.1);
            println!(
                "shape check (DD gains over RR at heavy load for split configs): {}",
                if ok { "OK" } else { "CHECK" }
            );
        }
    }
}
