//! **Ablation (non-paper)** — transparent-copy scaling on a
//! multiprocessor host.
//!
//! The paper's optimization is "executing multiple copies of a single
//! filter across a set of host machines"; within one SMP host the copy
//! set shares a queue and the cores. Sweep raster copies on the 8-way
//! Deathstar node and watch throughput scale until the cores (and then
//! the merge) saturate.

use bench::{dc_avg, large_dataset, ExperimentScale, Table};
use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, AppConfig, Grouping, PipelineSpec};
use hetsim::presets::red_with_deathstar;
use std::sync::Arc;

fn main() {
    let scale = ExperimentScale { timesteps: 1 };
    let ds = large_dataset();

    let mut t = Table::new(&["Ra copies on 8-way", "time (s)", "speedup vs 1"]);
    let mut base = None;
    for copies in [1u32, 2, 4, 7, 8, 12, 16] {
        let (topo, reds, deathstar) = red_with_deathstar(4);
        let mut cfg = AppConfig::new(ds.clone(), reds.clone(), 1, 1024, 1024);
        cfg.iso = bench::ISO;
        let cfg = Arc::new(cfg);
        let spec = PipelineSpec {
            grouping: Grouping::RERaSplit {
                raster: Placement::on_host(deathstar, copies),
            },
            algorithm: Algorithm::ActivePixel,
            policy: WritePolicy::WeightedRoundRobin,
            merge_host: deathstar,
        };
        let (secs, _) = dc_avg(&topo, &cfg, &spec, scale);
        let b = *base.get_or_insert(secs);
        t.row(vec![
            copies.to_string(),
            format!("{secs:.2}"),
            format!("{:.2}x", b / secs),
        ]);
    }
    t.print(
        "Ablation: raster copy scaling on the 8-way compute node (4 Red data nodes, 1024x1024)",
    );
    println!("expected: near-linear to ~4 copies, flattening at the core count and the\nshared Fast-Ethernet uplink");
}
