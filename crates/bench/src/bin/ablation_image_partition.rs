//! **Ablation (the paper's §6 future work)** — image partitioning vs
//! image replication for the raster stage.
//!
//! The paper: "we could partition the image space into subregions among
//! the raster filters, thus eliminating [most of the work of] the merge
//! filter. However, this will cause load imbalance among raster filters if
//! the amount of data for each subregion is not the same."
//!
//! Both effects are measured here:
//!
//! * **raster-bound** regime (few nodes, moderate image): the projected
//!   surface concentrates in the middle image bands, so partitioning
//!   starves the outer bands' copies while replication + demand-driven
//!   scheduling keeps everyone busy — replication wins;
//! * **merge-bound** regime (many nodes, 2048², z-buffer): replication
//!   funnels one dense z-buffer *per copy* through the single merge
//!   filter, partitioning ships exactly one image in total — partitioning
//!   wins big.

use bench::{dc_avg, large_dataset, make_cfg, ExperimentScale, Table};
use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::presets::rogue_cluster;

fn main() {
    let scale = ExperimentScale { timesteps: 1 };
    let ds = large_dataset();

    let mut t = Table::new(&[
        "regime",
        "nodes",
        "image",
        "alg",
        "replicated (s)",
        "partitioned (s)",
        "repl merge MB",
        "part merge MB",
    ]);
    let mut raster_bound_gap = 1.0f64;
    let mut merge_bound_gap = 1.0f64;
    for (regime, nodes, image, algs) in [
        (
            "raster-bound",
            4usize,
            1024u32,
            vec![Algorithm::ZBuffer, Algorithm::ActivePixel],
        ),
        ("merge-bound", 8, 2048, vec![Algorithm::ZBuffer]),
    ] {
        for alg in algs {
            let (topo, hosts) = rogue_cluster(nodes);
            let cfg = make_cfg(ds.clone(), hosts.clone(), 2, image);
            let mk = |grouping| PipelineSpec {
                grouping,
                algorithm: alg,
                policy: WritePolicy::demand_driven(),
                merge_host: hosts[0],
            };
            let (repl_t, repl_r) = dc_avg(
                &topo,
                &cfg,
                &mk(Grouping::RERaSplit {
                    raster: Placement::one_per_host(&hosts),
                }),
                scale,
            );
            let (part_t, part_r) = dc_avg(
                &topo,
                &cfg,
                &mk(Grouping::ImagePartitioned {
                    raster: Placement::one_per_host(&hosts),
                }),
                scale,
            );
            if regime == "raster-bound" && alg == Algorithm::ActivePixel {
                raster_bound_gap = part_t / repl_t;
            }
            if regime == "merge-bound" {
                merge_bound_gap = repl_t / part_t;
            }
            t.row(vec![
                regime.into(),
                nodes.to_string(),
                image.to_string(),
                alg.label().into(),
                format!("{repl_t:.2}"),
                format!("{part_t:.2}"),
                format!(
                    "{:.1}",
                    repl_r[0].report.stream(repl_r[0].to_merge).total_bytes() as f64 / 1e6
                ),
                format!(
                    "{:.1}",
                    part_r[0].report.stream(part_r[0].to_merge).total_bytes() as f64 / 1e6
                ),
            ]);
        }
    }
    t.print("Ablation: image partitioning vs replication (DD policy)");
    println!(
        "raster-bound: partitioning {raster_bound_gap:.2}x slower (band load imbalance); \
         merge-bound: partitioning {merge_bound_gap:.2}x faster (merge volume)"
    );
    println!(
        "shape check (the trade-off exists in both directions): {}",
        if raster_bound_gap > 1.1 && merge_bound_gap > 1.3 {
            "OK"
        } else {
            "CHECK"
        }
    );
}
