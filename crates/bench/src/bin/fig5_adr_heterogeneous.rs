//! **Figure 5** — ADR vs the two component-based versions on a
//! heterogeneous half-Rogue / half-Blue node mix, with 0/1/4/16
//! equal-priority background jobs on every Rogue node (Blue dedicated),
//! normalized to ADR.
//!
//! Paper shape: the component-based versions stay stable as background
//! load grows while ADR (static partitioning) degrades — more so at
//! 2048² where the raster filter has more work that cannot be offloaded.
//! ADR wins only at low load with many nodes.

use bench::{adr_avg, dc_avg, large_dataset, load_hosts, make_cfg, ExperimentScale, Table};
use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::presets::rogue_blue_mix;

fn main() {
    let scale = ExperimentScale::default();
    let ds = large_dataset();
    let mut shape_notes = Vec::new();

    for n_each in [2usize, 4, 8] {
        let mut t = Table::new(&[
            "bg jobs", "image", "ADR", "DC ZB", "DC AP", "ZB/ADR", "AP/ADR",
        ]);
        let mut adr_degradation = Vec::new();
        let mut ap_ratio = Vec::new();
        for bg in [0u32, 1, 4, 16] {
            for image in [512u32, 2048] {
                let (topo, rogues, blues) = rogue_blue_mix(n_each);
                let mut hosts = rogues.clone();
                hosts.extend(&blues);
                let cfg = make_cfg(ds.clone(), hosts.clone(), 2, image);
                load_hosts(&topo, &rogues, bg);

                let (adr_t, _) = adr_avg(&topo, &cfg, scale);
                let mk = |alg| PipelineSpec {
                    grouping: Grouping::RERaSplit {
                        raster: Placement::one_per_host(&hosts),
                    },
                    algorithm: alg,
                    policy: WritePolicy::demand_driven(),
                    merge_host: blues[0],
                };
                let (zb_t, _) = dc_avg(&topo, &cfg, &mk(Algorithm::ZBuffer), scale);
                let (ap_t, _) = dc_avg(&topo, &cfg, &mk(Algorithm::ActivePixel), scale);

                if image == 2048 {
                    adr_degradation.push(adr_t);
                    ap_ratio.push(ap_t / adr_t);
                }
                t.row(vec![
                    bg.to_string(),
                    image.to_string(),
                    format!("{adr_t:.2}"),
                    format!("{zb_t:.2}"),
                    format!("{ap_t:.2}"),
                    format!("{:.2}", zb_t / adr_t),
                    format!("{:.2}", ap_t / adr_t),
                ]);
            }
        }
        t.print(&format!(
            "Figure 5: {n_each} Rogue + {n_each} Blue nodes, bg jobs on Rogue (times s, ratios normalized to ADR)"
        ));

        // Shape: ADR degrades steeply with load, and the component-based
        // version's *relative* standing improves as load grows (the
        // paper's normalized bars shrink with bg).
        let adr_blowup = adr_degradation.last().unwrap() / adr_degradation[0];
        println!(
            "at 2048: ADR degrades {adr_blowup:.2}x from bg 0 to 16; AP/ADR ratio {:.2} -> {:.2}",
            ap_ratio[0],
            ap_ratio.last().unwrap()
        );
        if adr_blowup < 4.0 {
            shape_notes.push(format!(
                "{n_each}+{n_each} nodes: ADR blowup only {adr_blowup:.2}x"
            ));
        }
        if *ap_ratio.last().unwrap() >= 0.6 {
            shape_notes.push(format!(
                "{n_each}+{n_each} nodes: DC-AP not clearly ahead of ADR under heavy load"
            ));
        }
    }
    if shape_notes.is_empty() {
        println!("\nshape check (DC stable under load, ADR degrades): OK");
    } else {
        println!("\nshape check: CHECK NOTES");
        for n in shape_notes {
            println!("NOTE: {n}");
        }
    }
}
