//! **outofcore_sweep** — the out-of-core data plane under shrinking
//! memory budgets, plus the shared chunk cache's warm-read savings.
//!
//! Two sweeps over the small reference dataset on a 4-host cluster:
//!
//! 1. **Budget sweep** — the same pipeline at an in-flight buffer budget
//!    of 1/1, 1/4, and 1/16 of the dataset's timestep size (and
//!    unbudgeted as the reference). Each cell records the spill/fault
//!    counters, the disk-model write events the spill ring charged, and
//!    the spill throughput on the virtual clock. Every image is
//!    FNV-digested against the unbudgeted reference — a budget may cost
//!    time, never bits.
//! 2. **Cache sweep** — a cold run then a warm re-read through the same
//!    shared chunk cache, recording disk-model read events and the hit
//!    rate. The warm run must issue at most half the cold run's read
//!    events (the out-of-core acceptance bar).
//!
//! Usage: `outofcore_sweep [--out FILE] [--no-out]`
//! Writes `BENCH_outofcore.json` (one row per cell, fresh each run).

use dcapp::{Algorithm, AppConfig, Grouping, PipelineSpec, SharedConfig};
use std::sync::Arc;

use bench::{small_dataset, Table, ISO};
use datacutter::{Placement, WritePolicy};
use hetsim::presets::rogue_cluster;
use hetsim::{HostId, Topology};
use volume::Dataset;

/// FNV-1a over the image dimensions and pixels (the same fold the
/// bit-identity test suites pin).
fn image_digest(img: &isosurf::Image) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&(img.width as u64).to_le_bytes());
    eat(&(img.height as u64).to_le_bytes());
    for px in &img.data {
        eat(px);
    }
    h
}

/// Cumulative disk-model event counters across every disk in the
/// cluster. The sim Disks are shared handles, so deltas around a run
/// isolate that run's traffic.
fn disk_totals(topo: &Topology) -> (u64, u64, u64, u64) {
    let mut reads = 0;
    let mut bytes_read = 0;
    let mut writes = 0;
    let mut bytes_written = 0;
    for host in topo.hosts() {
        for d in &host.disks {
            reads += d.reads();
            bytes_read += d.bytes_read();
            writes += d.writes();
            bytes_written += d.bytes_written();
        }
    }
    (reads, bytes_read, writes, bytes_written)
}

struct Row {
    id: String,
    budget_bytes: u64,
    cache_bytes: u64,
    spills: u64,
    spill_bytes: u64,
    faults: u64,
    disk_reads: u64,
    disk_writes: u64,
    cache_hit_rate: f64,
    spill_mb_per_s: f64,
    elapsed_ms: f64,
    digest: u64,
}

fn main() {
    let mut out: Option<String> = Some("BENCH_outofcore.json".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(args.next().expect("--out needs a value")),
            "--no-out" => out = None,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    const IMAGE: u32 = 64;
    const HOSTS: usize = 4;
    let ds = small_dataset();
    let total = ds.timestep_bytes();
    let (topo, hosts) = rogue_cluster(HOSTS);

    let make = |dataset: Dataset, hosts: &[HostId], budget: u64, cache: u64| -> SharedConfig {
        let mut cfg = AppConfig::new(dataset, hosts.to_vec(), 2, IMAGE, IMAGE);
        cfg.iso = ISO;
        cfg.memory_budget_bytes = budget;
        cfg.cache_capacity = cache;
        cfg.validate().expect("config validates");
        Arc::new(cfg)
    };
    // The four-stage grouping keeps chunk payloads queued on cross-host
    // streams, which is what a shrinking budget squeezes.
    let spec = PipelineSpec {
        grouping: Grouping::FourStage {
            extract: Placement::on_host(hosts[1], 1),
            raster: Placement::on_host(hosts[0], 1),
        },
        algorithm: Algorithm::ActivePixel,
        policy: WritePolicy::demand_driven(),
        merge_host: hosts[0],
    };

    let mut rows: Vec<Row> = Vec::new();
    let run_cell = |id: String, cfg: &SharedConfig| -> Row {
        let before = disk_totals(&topo);
        let r = dcapp::run_pipeline(&topo, cfg, &spec).expect("sim run failed");
        let after = disk_totals(&topo);
        let ooc = r.report.ooc;
        let elapsed_s = r.elapsed.as_secs_f64();
        let stats = cfg.chunk_cache().map(|c| c.stats());
        Row {
            id,
            budget_bytes: cfg.memory_budget_bytes,
            cache_bytes: cfg.cache_capacity,
            spills: ooc.spills,
            spill_bytes: ooc.spill_bytes,
            faults: ooc.faults,
            disk_reads: after.0 - before.0,
            disk_writes: after.2 - before.2,
            cache_hit_rate: stats.map_or(0.0, |s| s.hit_rate()),
            spill_mb_per_s: if elapsed_s > 0.0 {
                ooc.spill_bytes as f64 / 1e6 / elapsed_s
            } else {
                0.0
            },
            elapsed_ms: elapsed_s * 1e3,
            digest: image_digest(&r.image),
        }
    };

    // --- budget sweep -----------------------------------------------------
    let reference = run_cell(
        "ooc/unbudgeted".to_string(),
        &make(ds.clone(), &hosts, 0, 0),
    );
    let baseline = reference.digest;
    assert_eq!(reference.spills, 0, "unbudgeted runs never spill");
    rows.push(reference);
    for (label, frac) in [("1_1", 1u64), ("1_4", 4), ("1_16", 16)] {
        let cfg = make(ds.clone(), &hosts, total / frac, 0);
        let row = run_cell(format!("ooc/budget_{label}"), &cfg);
        assert_eq!(
            row.digest, baseline,
            "DIGEST DRIFT at {}: a memory budget may cost time, never bits",
            row.id
        );
        rows.push(row);
    }

    // --- cache sweep ------------------------------------------------------
    // One config, two runs: the OnceLock-held cache survives between
    // them, so the second run re-reads through a warm cache.
    let cached = make(ds.clone(), &hosts, 0, total);
    let cold = run_cell("ooc/cache_cold".to_string(), &cached);
    let warm = run_cell("ooc/cache_warm".to_string(), &cached);
    assert_eq!(cold.digest, baseline, "DIGEST DRIFT at ooc/cache_cold");
    assert_eq!(warm.digest, baseline, "DIGEST DRIFT at ooc/cache_warm");
    assert!(
        warm.disk_reads * 2 <= cold.disk_reads,
        "REGRESSION: warm cache must at least halve disk read events \
         (cold {} vs warm {})",
        cold.disk_reads,
        warm.disk_reads
    );
    rows.push(cold);
    rows.push(warm);

    let mut t = Table::new(&[
        "cell",
        "budget B",
        "spills",
        "spill B",
        "disk rd",
        "disk wr",
        "hit rate",
        "spill MB/s",
        "virt ms",
    ]);
    for r in &rows {
        t.row(vec![
            r.id.clone(),
            r.budget_bytes.to_string(),
            r.spills.to_string(),
            r.spill_bytes.to_string(),
            r.disk_reads.to_string(),
            r.disk_writes.to_string(),
            format!("{:.2}", r.cache_hit_rate),
            format!("{:.2}", r.spill_mb_per_s),
            format!("{:.1}", r.elapsed_ms),
        ]);
    }
    t.print(&format!(
        "outofcore_sweep (dataset {} B/timestep, {} hosts)",
        total, HOSTS
    ));

    if let Some(path) = out {
        let mut json = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "  {{\"id\": \"{}\", \"budget_bytes\": {}, \"cache_bytes\": {}, \
                 \"spills\": {}, \"spill_bytes\": {}, \"faults\": {}, \
                 \"disk_reads\": {}, \"disk_writes\": {}, \
                 \"cache_hit_rate\": {:.4}, \"spill_mb_per_s\": {:.3}, \
                 \"elapsed_virtual_ms\": {:.3}, \"image_digest\": \"{:#018x}\"}}{}\n",
                r.id,
                r.budget_bytes,
                r.cache_bytes,
                r.spills,
                r.spill_bytes,
                r.faults,
                r.disk_reads,
                r.disk_writes,
                r.cache_hit_rate,
                r.spill_mb_per_s,
                r.elapsed_ms,
                r.digest,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("]\n");
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}
