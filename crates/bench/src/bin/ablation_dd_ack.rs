//! **Ablation (non-paper)** — demand-driven window size vs network speed.
//!
//! The paper's §6 conclusion: DD wins "when the bandwidth of the
//! interconnect is reasonably high and the system load dynamically
//! changes", but ack traffic "introduces too much overhead when the
//! network is slow". This ablation sweeps the DD window per copy and the
//! interconnect bandwidth and compares against WRR.

use bench::{dc_avg, large_dataset, ExperimentScale, Table};
use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, AppConfig, Grouping, PipelineSpec};
use hetsim::{ClusterSpec, HostId, HostSpec, SimDuration, TopologyBuilder};
use std::sync::Arc;

fn cluster(n: usize, bw: f64) -> (hetsim::Topology, Vec<HostId>) {
    let mut b = TopologyBuilder::new();
    let c = b.add_cluster(ClusterSpec {
        name: "c".into(),
        nic_bandwidth_bps: bw,
        nic_latency: SimDuration::from_micros(90),
    });
    let hosts = (0..n)
        .map(|i| {
            b.add_host(
                c,
                HostSpec {
                    name: format!("h{i}"),
                    cores: 1,
                    speed: 1.0,
                    mem_mb: 256,
                    disks: 2,
                    disk_bandwidth_bps: 25.0e6,
                    disk_seek: SimDuration::from_millis(9),
                },
            )
        })
        .collect();
    (b.build(), hosts)
}

fn main() {
    let scale = ExperimentScale { timesteps: 1 };
    let ds = large_dataset();
    let mut t = Table::new(&["net MB/s", "WRR", "DD w=1", "DD w=2", "DD w=4", "DD w=8"]);

    for bw_mbps in [1.0f64, 4.0, 11.5, 100.0] {
        let mut row = vec![format!("{bw_mbps}")];
        let policies: Vec<WritePolicy> = std::iter::once(WritePolicy::WeightedRoundRobin)
            .chain(
                [1u32, 2, 4, 8]
                    .into_iter()
                    .map(|w| WritePolicy::DemandDriven { window_per_copy: w }),
            )
            .collect();
        for policy in policies {
            let (topo, hosts) = cluster(4, bw_mbps * 1e6);
            // Load half the nodes so DD has something to adapt to.
            for &h in &hosts[..2] {
                topo.host(h).cpu.set_bg_jobs(4);
            }
            let mut cfg = AppConfig::new(ds.clone(), hosts.clone(), 2, 512, 512);
            cfg.iso = bench::ISO;
            let cfg = Arc::new(cfg);
            let spec = PipelineSpec {
                grouping: Grouping::RERaSplit {
                    raster: Placement::one_per_host(&hosts),
                },
                algorithm: Algorithm::ActivePixel,
                policy,
                merge_host: hosts[3],
            };
            let (secs, _) = dc_avg(&topo, &cfg, &spec, scale);
            row.push(format!("{secs:.2}"));
        }
        t.row(row);
    }
    t.print(
        "Ablation: DD window vs interconnect bandwidth (4 nodes, 2 loaded, ActivePixel 512x512)",
    );
    println!(
        "measured: DD beats WRR at every bandwidth here, and tighter windows adapt\n\
         harder. Ack *bandwidth* (64 B per ~60 KB buffer) never dominates at these\n\
         message rates — the DD penalty the paper observed on slow networks must come\n\
         from per-message CPU and latency costs beyond pure serialization, which is\n\
         why Table 5 (7 copies behind a Fast-Ethernet uplink, ack floods converging\n\
         on the producers) is where our DD-vs-WRR gap shows up instead"
    );
}
