//! **fanout_sweep** — the copies-per-core scaling curve of the
//! cooperative task substrate.
//!
//! Scales the raster stage through 64 → 4096 transparent copies on a
//! 4-host cluster and times the same graph on the thread-per-copy
//! [`datacutter::NativeExecutor`] and the pool-multiplexed
//! [`datacutter::TaskedExecutor`] (admission pool sized to the machine's
//! cores, so the `copies/core` column is the oversubscription factor the
//! paper-scale fan-out demands). The z-buffer algorithm keeps the merge
//! traffic proportional to copy count, so the sweep stresses exactly what
//! grows with fan-out: park/unpark churn on the channels, the DD credit
//! window, and the end-of-work barrier.
//!
//! Every cell is a correctness gate: each wall-clock run's image is
//! FNV-digested and compared against the virtual-time simulator's digest
//! for the same scale (itself diffed against the sequential reference).
//! Any drift fails the run — this is the digest sentinel the
//! `perf-smoke` CI job relies on.
//!
//! Usage: `fanout_sweep [--quick] [--reps N] [--out FILE] [--no-out]`
//! Writes `BENCH_fanout.json` (one row per cell, fresh each run).
//! `--reps N` times each wall-clock cell N times and reports the
//! minimum — the standard de-noising for shared-machine benchmarking
//! (every repetition still digest-gates its image).

use std::time::Instant;

use bench::{make_cfg, small_dataset, Table};
use datacutter::{NativeExecutor, Placement, TaskedExecutor, WritePolicy};
use dcapp::{reference_image, run_pipeline, run_pipeline_exec, Algorithm, Grouping, PipelineSpec};
use hetsim::presets::rogue_cluster;

/// FNV-1a over the image dimensions and pixels (the same fold the
/// bit-identity test suites pin).
fn image_digest(img: &isosurf::Image) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&(img.width as u64).to_le_bytes());
    eat(&(img.height as u64).to_le_bytes());
    for px in &img.data {
        eat(px);
    }
    h
}

struct Row {
    id: String,
    copies: usize,
    copies_per_core: f64,
    wall_ms: f64,
    digest: u64,
    /// Saturated-pool notifications delivered as deferred admission
    /// hand-offs (tasked cells only; each is a futile carrier wakeup the
    /// direct-wake scheme would have paid).
    deferred_wakes: u64,
}

fn main() {
    let mut quick = false;
    let mut reps: usize = 1;
    let mut out: Option<String> = Some("BENCH_fanout.json".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--reps" => {
                reps = args
                    .next()
                    .expect("--reps needs a value")
                    .parse()
                    .expect("--reps N");
                assert!(reps >= 1, "--reps must be at least 1");
            }
            "--out" => out = Some(args.next().expect("--out needs a value")),
            "--no-out" => out = None,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    const IMAGE: u32 = 64;
    const HOSTS: usize = 4;
    let per_host: &[u32] = if quick {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024]
    };
    let workers = datacutter::runtime::tasked::default_workers();

    let ds = small_dataset();
    let (topo, hosts) = rogue_cluster(HOSTS);
    let cfg = make_cfg(ds, hosts.clone(), 2, IMAGE);
    let reference = reference_image(&cfg);

    let mut rows: Vec<Row> = Vec::new();
    for &per in per_host {
        let copies = HOSTS * per as usize;
        let spec = PipelineSpec {
            grouping: Grouping::RERaSplit {
                raster: Placement {
                    per_host: hosts.iter().map(|&h| (h, per)).collect(),
                },
            },
            algorithm: Algorithm::ZBuffer,
            policy: WritePolicy::demand_driven(),
            merge_host: hosts[0],
        };

        // Digest baseline on the deterministic substrate.
        let sim = run_pipeline(&topo, &cfg, &spec).expect("sim run failed");
        assert_eq!(
            sim.image.diff_pixels(&reference),
            0,
            "REGRESSION: sim image diverged from the sequential reference at n{copies}"
        );
        let baseline = image_digest(&sim.image);

        let cell = |id: String, exec: fn() -> datacutter::ExecutorChoice| -> Row {
            let mut wall_ms = f64::INFINITY;
            let mut digest = 0u64;
            let mut deferred_wakes = 0u64;
            for _ in 0..reps {
                let t0 = Instant::now();
                let r =
                    run_pipeline_exec(&topo, &cfg, &spec, exec()).expect("wall-clock run failed");
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                digest = image_digest(&r.image);
                assert_eq!(
                    digest, baseline,
                    "DIGEST DRIFT at {id}: wall-clock fan-out no longer bit-identical to sim"
                );
                if ms < wall_ms {
                    wall_ms = ms;
                    deferred_wakes = r.report.deferred_wakes;
                }
            }
            Row {
                id,
                copies,
                copies_per_core: copies as f64 / workers as f64,
                wall_ms,
                digest,
                deferred_wakes,
            }
        };

        let nat = cell(format!("fanout/n{copies}/native"), || {
            NativeExecutor::new().into()
        });
        let tsk = cell(format!("fanout/n{copies}/tasked"), || {
            TaskedExecutor::new().into()
        });
        println!(
            "n{copies} ({:.0} copies/core): native {:.1} ms -> tasked {:.1} ms wall \
             ({} deferred wakes), digest {:#018x}",
            tsk.copies_per_core, nat.wall_ms, tsk.wall_ms, tsk.deferred_wakes, tsk.digest,
        );
        rows.push(nat);
        rows.push(tsk);
    }

    let mut t = Table::new(&["cell", "copies", "copies/core", "wall ms", "deferred wakes"]);
    for r in &rows {
        t.row(vec![
            r.id.clone(),
            r.copies.to_string(),
            format!("{:.0}", r.copies_per_core),
            format!("{:.1}", r.wall_ms),
            r.deferred_wakes.to_string(),
        ]);
    }
    t.print(&format!(
        "fanout_sweep ({}, pool = {} workers)",
        if quick { "quick" } else { "full" },
        workers
    ));

    if let Some(path) = out {
        let mut json = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "  {{\"id\": \"{}\", \"copies\": {}, \"copies_per_core\": {:.1}, \
                 \"wall_ms\": {:.1}, \"deferred_wakes\": {}, \
                 \"image_digest\": \"{:#018x}\"}}{}\n",
                r.id,
                r.copies,
                r.copies_per_core,
                r.wall_ms,
                r.deferred_wakes,
                r.digest,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("]\n");
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}
