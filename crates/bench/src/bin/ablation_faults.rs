//! **Ablation — fault injection and recovery** (non-paper): crash one of
//! the two extract hosts partway into a fig-7-style skewed run and
//! compare, per writer policy, three arms:
//!
//! - **fault-free** — the clean baseline;
//! - **recovered** — the same crash under [`datacutter::Recovery::Lossless`]:
//!   retention + replay + idempotent redelivery must finish with
//!   `lost == 0` and the *exact* clean image under every policy, paying
//!   only elapsed-time overhead;
//! - **degraded** — the same crash under the default loss-accounted mode:
//!   demand-driven replays its acknowledgment window and recovers
//!   bit-identically anyway; RR/WRR have no acks and finish degraded
//!   with every dropped buffer tallied.
//!
//! Writes `BENCH_faults.json` (one row per policy+arm, fresh each run)
//! so CI can gate on the recovery contract: a recovered row with
//! `lost > 0` or `diff_px > 0` is a regression, and the
//! `recovered_overhead` ratio tracks what losslessness costs.
//!
//! A second section ablates the **self-healing storage plane** on a
//! memory-budgeted (spilling) run and writes `BENCH_storage.json`:
//!
//! - **baseline** — budgeted, checksummed spill frames (the default);
//! - **no-checksum** — the same run with `checksum_spills = false`,
//!   isolating what the FNV trailer costs;
//! - **chaos** — seeded transient disk-error windows on every host,
//!   healed by the retry/backoff ladder; must finish with `lost == 0`
//!   and the exact baseline image, so CI gates the storage contract the
//!   same way it gates lossless recovery.
//!
//! Usage: `ablation_faults [--out FILE] [--no-out]`

use bench::{make_cfg, small_dataset, Table};
use datacutter::{DiskFaultKind, FaultOptions, Placement, WritePolicy};
use dcapp::{lossless_options, Algorithm, Grouping, PipelineSpec};
use hetsim::presets::rogue_blue_mix;
use hetsim::{FaultPlan, SimDuration, SimTime};
use volume::FilePlacement;

struct Row {
    id: String,
    virtual_s: f64,
    killed: u64,
    replayed: u64,
    redelivered: u64,
    suppressed: u64,
    lost: u64,
    diff_px: u64,
}

fn main() {
    let mut out: Option<String> = Some("BENCH_faults.json".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(args.next().expect("--out needs a value")),
            "--no-out" => out = None,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let ds = small_dataset();
    let (topo, rogues, blues) = rogue_blue_mix(2);
    // Storage on the two Blue nodes with half of node 0's files moved to
    // node 1 (the fig-7 skew scenario); extraction on the two Rogue
    // nodes, raster and merge back on Blue.
    let storage = vec![blues[0], blues[1]];
    let cfg = {
        let base = make_cfg(ds, storage, 2, 512);
        let mut c = dcapp::clone_config(&base);
        c.placement = FilePlacement::skewed(64, 2, 2, &[0], &[1], 50);
        std::sync::Arc::new(c)
    };

    let mut rows: Vec<Row> = Vec::new();
    for policy in [
        WritePolicy::RoundRobin,
        WritePolicy::WeightedRoundRobin,
        WritePolicy::demand_driven(),
    ] {
        let spec = PipelineSpec {
            grouping: Grouping::FourStage {
                extract: Placement::one_per_host(&[rogues[0], rogues[1]]),
                raster: Placement::on_host(blues[1], 1),
            },
            algorithm: Algorithm::ZBuffer,
            policy,
            merge_host: blues[0],
        };
        let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("clean run");
        // Crash early: the raster/merge tail dominates total elapsed, so
        // the R->E stream is only busy during the opening fraction of the
        // run — a late failure would land after it has already drained.
        let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(0.05);
        let plan = || FaultPlan::new().crash_host(rogues[1], crash_at);

        let recovered = dcapp::run_pipeline_faulted(
            &topo,
            &cfg,
            &spec,
            lossless_options(&cfg, FaultOptions::new(plan())),
        )
        .expect("recovered run");
        let degraded = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, FaultOptions::new(plan()))
            .expect("degraded run");

        let rf = &recovered.report.faults;
        assert_eq!(
            rf.buffers_lost,
            0,
            "REGRESSION ({}): lossless recovery lost buffers: {rf}",
            policy.label()
        );
        let rdiff = recovered.image.diff_pixels(&clean.image);
        assert_eq!(
            rdiff,
            0,
            "REGRESSION ({}): recovered image diverged from fault-free",
            policy.label()
        );

        let mut push = |arm: &str, r: &dcapp::PipelineResult, diff: u64| {
            let f = &r.report.faults;
            rows.push(Row {
                id: format!("faults/{}/{arm}", policy.label()),
                virtual_s: r.elapsed.as_secs_f64(),
                killed: f.copies_killed,
                replayed: f.buffers_replayed,
                redelivered: f.buffers_redelivered,
                suppressed: f.duplicates_suppressed,
                lost: f.buffers_lost,
                diff_px: diff,
            });
        };
        push("clean", &clean, 0);
        push("recovered", &recovered, rdiff);
        let ddiff = degraded.image.diff_pixels(&clean.image);
        push("degraded", &degraded, ddiff);
    }

    let mut t = Table::new(&[
        "cell",
        "virtual s",
        "killed",
        "replayed",
        "redelivered",
        "suppressed",
        "lost",
        "diff px",
    ]);
    for r in &rows {
        t.row(vec![
            r.id.clone(),
            format!("{:.2}", r.virtual_s),
            r.killed.to_string(),
            r.replayed.to_string(),
            r.redelivered.to_string(),
            r.suppressed.to_string(),
            r.lost.to_string(),
            r.diff_px.to_string(),
        ]);
    }
    t.print(
        "Ablation: one extract host crashes at 5% of the clean run \
         (2 Blue storage, skew 50%, 2 Rogue extract, ZBuffer 512x512)",
    );
    for chunk in rows.chunks(3) {
        if let [clean, recovered, _] = chunk {
            println!(
                "{}: recovered overhead {:.2}x over fault-free",
                recovered.id,
                recovered.virtual_s / clean.virtual_s
            );
        }
    }
    println!(
        "\nshape check: every recovered arm shows lost = 0, diff px = 0 \
         (bit-identical lossless recovery); degraded DD also recovers \
         exactly via its ack window, while degraded RR/WRR show lost > 0 \
         with every dropped buffer accounted"
    );

    if let Some(path) = out.clone() {
        let mut json = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "  {{\"id\": \"{}\", \"virtual_s\": {:.3}, \"killed\": {}, \
                 \"replayed\": {}, \"redelivered\": {}, \"suppressed\": {}, \
                 \"lost\": {}, \"diff_px\": {}}}{}\n",
                r.id,
                r.virtual_s,
                r.killed,
                r.replayed,
                r.redelivered,
                r.suppressed,
                r.lost,
                r.diff_px,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("]\n");
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }

    storage_ablation(out.is_some());
}

/// One row of the storage-plane ablation.
struct StorageRow {
    id: String,
    virtual_s: f64,
    spills: u64,
    spill_bytes: u64,
    errors: u64,
    retries: u64,
    denied: u64,
    corruptions: u64,
    lost: u64,
    diff_px: u64,
}

/// Checksum + retry overhead on a memory-budgeted (actively spilling)
/// demand-driven run, with the healed-chaos contract gated by asserts.
/// Writes `BENCH_storage.json` when `write_out` is set.
fn storage_ablation(write_out: bool) {
    let ds = small_dataset();
    let (topo, rogues, blues) = rogue_blue_mix(2);
    let base = make_cfg(ds, vec![blues[0], blues[1]], 2, 512);
    let spec = PipelineSpec {
        grouping: Grouping::FourStage {
            extract: Placement::one_per_host(&[rogues[0], rogues[1]]),
            raster: Placement::on_host(blues[1], 1),
        },
        algorithm: Algorithm::ZBuffer,
        policy: WritePolicy::demand_driven(),
        merge_host: blues[0],
    };
    // A 1/16-of-a-timestep budget forces real spill traffic, so the
    // checksum and the retry ladder are both actually on the data path.
    let budgeted = |checksum: bool| {
        let mut c = dcapp::clone_config(&base);
        c.memory_budget_bytes = c.dataset.timestep_bytes() / 16;
        c.checksum_spills = checksum;
        std::sync::Arc::new(c)
    };
    let with_cs = budgeted(true);
    let without_cs = budgeted(false);

    let baseline = dcapp::run_pipeline(&topo, &with_cs, &spec).expect("budgeted baseline");
    assert!(
        baseline.report.ooc.spills > 0,
        "REGRESSION: the storage ablation budget no longer spills"
    );
    let raw = dcapp::run_pipeline(&topo, &without_cs, &spec).expect("checksum-off run");
    let raw_diff = raw.image.diff_pixels(&baseline.image);
    assert_eq!(raw_diff, 0, "REGRESSION: checksums changed pixels");

    // Transient error windows on every host, both directions, healed by
    // the seeded retry/backoff ladder.
    let mut plan = FaultPlan::new().storage_seed(0x57AB);
    for h in topo.hosts().iter().map(|h| h.id) {
        plan = plan
            .disk_error(
                h,
                SimTime::ZERO,
                SimDuration::from_secs(3600),
                0.25,
                DiskFaultKind::Write,
            )
            .disk_error(
                h,
                SimTime::ZERO,
                SimDuration::from_secs(3600),
                0.25,
                DiskFaultKind::Read,
            );
    }
    let chaos = dcapp::run_pipeline_faulted(&topo, &with_cs, &spec, FaultOptions::new(plan))
        .expect("storage-chaos run");
    let cf = &chaos.report.faults;
    assert!(
        cf.disk_errors_injected > 0,
        "REGRESSION: the storage chaos plan injected nothing: {cf}"
    );
    assert_eq!(
        cf.buffers_lost, 0,
        "REGRESSION: transient storage faults lost buffers: {cf}"
    );
    let chaos_diff = chaos.image.diff_pixels(&baseline.image);
    assert_eq!(
        chaos_diff, 0,
        "REGRESSION: healed storage chaos diverged from the baseline image"
    );

    let row = |id: &str, r: &dcapp::PipelineResult, diff: u64| {
        let f = &r.report.faults;
        StorageRow {
            id: format!("storage/{id}"),
            virtual_s: r.elapsed.as_secs_f64(),
            spills: r.report.ooc.spills,
            spill_bytes: r.report.ooc.spill_bytes,
            errors: f.disk_errors_injected,
            retries: f.storage_retries,
            denied: f.spills_denied,
            corruptions: f.corruptions_detected,
            lost: f.buffers_lost,
            diff_px: diff,
        }
    };
    let rows = vec![
        row("no-checksum", &raw, raw_diff),
        row("baseline", &baseline, 0),
        row("chaos", &chaos, chaos_diff),
    ];

    let mut t = Table::new(&[
        "cell",
        "virtual s",
        "spills",
        "spill B",
        "errors",
        "retries",
        "denied",
        "corrupt",
        "lost",
        "diff px",
    ]);
    for r in &rows {
        t.row(vec![
            r.id.clone(),
            format!("{:.2}", r.virtual_s),
            r.spills.to_string(),
            r.spill_bytes.to_string(),
            r.errors.to_string(),
            r.retries.to_string(),
            r.denied.to_string(),
            r.corruptions.to_string(),
            r.lost.to_string(),
            r.diff_px.to_string(),
        ]);
    }
    t.print(
        "Ablation: checksummed spill frames and the storage retry ladder \
         on a 1/16-budget DD run (2 Blue storage, 2 Rogue extract, \
         ZBuffer 512x512)",
    );
    println!(
        "storage/baseline: checksum overhead {:.3}x over no-checksum; \
         storage/chaos: retry overhead {:.3}x over baseline \
         (lost = 0, diff px = 0 in every arm)",
        rows[1].virtual_s / rows[0].virtual_s,
        rows[2].virtual_s / rows[1].virtual_s
    );

    if write_out {
        let path = "BENCH_storage.json";
        let mut json = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "  {{\"id\": \"{}\", \"virtual_s\": {:.3}, \"spills\": {}, \
                 \"spill_bytes\": {}, \"errors\": {}, \"retries\": {}, \
                 \"denied\": {}, \"corruptions\": {}, \"lost\": {}, \
                 \"diff_px\": {}}}{}\n",
                r.id,
                r.virtual_s,
                r.spills,
                r.spill_bytes,
                r.errors,
                r.retries,
                r.denied,
                r.corruptions,
                r.lost,
                r.diff_px,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("]\n");
        std::fs::write(path, json).expect("write storage bench json");
        println!("wrote {path}");
    }
}
