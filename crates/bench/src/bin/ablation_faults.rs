//! **Ablation — fault injection and recovery** (non-paper): crash one of
//! the two extract hosts partway into a fig-7-style skewed run and
//! compare the three writer policies.
//!
//! Expected shapes: demand-driven replays every unacknowledged buffer to
//! the surviving extract host and renders the *exact* clean image
//! (diff px = 0) at the cost of extra elapsed time; RR/WRR have no
//! acknowledgment state to replay from, so they finish degraded — the
//! buffers queued at (or in flight to) the dead host are tallied as
//! lost. Losses are bounded by the dead set's queue depth (a killed copy
//! flushes its in-flight buffer), so the pixel diff is small and can be
//! zero when the lost chunks carry no visible surface.

use bench::{make_cfg, small_dataset, Table};
use datacutter::{FaultOptions, Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::presets::rogue_blue_mix;
use hetsim::{FaultPlan, SimTime};
use volume::FilePlacement;

fn main() {
    let ds = small_dataset();
    let (topo, rogues, blues) = rogue_blue_mix(2);
    // Storage on the two Blue nodes with half of node 0's files moved to
    // node 1 (the fig-7 skew scenario); extraction on the two Rogue
    // nodes, raster and merge back on Blue.
    let storage = vec![blues[0], blues[1]];
    let cfg = {
        let base = make_cfg(ds, storage, 2, 512);
        let mut c = dcapp::clone_config(&base);
        c.placement = FilePlacement::skewed(64, 2, 2, &[0], &[1], 50);
        std::sync::Arc::new(c)
    };

    let mut t = Table::new(&[
        "policy",
        "clean s",
        "faulted s",
        "killed",
        "replayed",
        "lost",
        "diff px",
    ]);
    for policy in [
        WritePolicy::RoundRobin,
        WritePolicy::WeightedRoundRobin,
        WritePolicy::demand_driven(),
    ] {
        let spec = PipelineSpec {
            grouping: Grouping::FourStage {
                extract: Placement::one_per_host(&[rogues[0], rogues[1]]),
                raster: Placement::on_host(blues[1], 1),
            },
            algorithm: Algorithm::ZBuffer,
            policy,
            merge_host: blues[0],
        };
        let clean = dcapp::run_pipeline(&topo, &cfg, &spec).expect("clean run");
        // Crash early: the raster/merge tail dominates total elapsed, so
        // the R->E stream is only busy during the opening fraction of the
        // run — a late failure would land after it has already drained.
        let crash_at = SimTime::ZERO + clean.elapsed.mul_f64(0.05);
        let plan = FaultPlan::new().crash_host(rogues[1], crash_at);
        let faulted = dcapp::run_pipeline_faulted(&topo, &cfg, &spec, FaultOptions::new(plan))
            .expect("faulted run");
        let f = &faulted.report.faults;
        t.row(vec![
            policy.label().to_string(),
            format!("{:.2}", clean.elapsed.as_secs_f64()),
            format!("{:.2}", faulted.elapsed.as_secs_f64()),
            f.copies_killed.to_string(),
            f.buffers_replayed.to_string(),
            f.buffers_lost.to_string(),
            faulted.image.diff_pixels(&clean.image).to_string(),
        ]);
    }
    t.print(
        "Ablation: one extract host crashes at 5% of the clean run \
         (2 Blue storage, skew 50%, 2 Rogue extract, ZBuffer 512x512)",
    );
    println!(
        "\nshape check: DD should show replayed > 0, lost = 0, diff px = 0 \
         (bit-identical recovery); RR/WRR should show lost > 0 (degraded \
         completion, every dropped buffer accounted; the diff stays small \
         because a killed copy still flushes its in-flight work)"
    );
}
