//! **Figure 4** — isosurface rendering times for the original ADR
//! implementation and the two component-based versions, as the number of
//! homogeneous (Rogue) nodes varies; 512² and 2048² output images.
//!
//! Paper shape: ADR (tuned for exactly this homogeneous, accumulator-based
//! setting) wins or ties at low node counts; the component-based Z-buffer
//! version is at worst ~20% slower; the Active Pixel version is about the
//! same or faster than ADR from 2 nodes up.

use bench::{adr_avg, dc_avg, large_dataset, make_cfg, ExperimentScale, Table};
use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::presets::rogue_cluster;

fn main() {
    let scale = ExperimentScale::default();
    let ds = large_dataset();
    let mut t = Table::new(&["nodes", "image", "ADR", "DC Z-buffer", "DC ActivePixel"]);
    let mut shape_ok = true;

    for nodes in [1usize, 2, 4, 8] {
        for image in [512u32, 2048] {
            let (topo, hosts) = rogue_cluster(nodes);
            let cfg = make_cfg(ds.clone(), hosts.clone(), 2, image);

            let (adr_t, _) = adr_avg(&topo, &cfg, scale);

            let mk_spec = |alg| PipelineSpec {
                grouping: Grouping::RERaSplit {
                    raster: Placement::one_per_host(&hosts),
                },
                algorithm: alg,
                policy: WritePolicy::demand_driven(),
                merge_host: hosts[0],
            };
            let (zb_t, _) = dc_avg(&topo, &cfg, &mk_spec(Algorithm::ZBuffer), scale);
            let (ap_t, _) = dc_avg(&topo, &cfg, &mk_spec(Algorithm::ActivePixel), scale);

            t.row(vec![
                nodes.to_string(),
                format!("{image}"),
                format!("{adr_t:.2}"),
                format!("{zb_t:.2}"),
                format!("{ap_t:.2}"),
            ]);

            // Paper: component versions competitive with ADR on its home
            // turf; the DC z-buffer merge funnels every copy's dense
            // buffer through ONE filter (the bottleneck the paper's §6
            // acknowledges), so the competitiveness claim is checked where
            // the merge volume doesn't saturate the emulated Fast
            // Ethernet (512² images). AP must win at scale.
            if image == 512 && zb_t > adr_t * 1.5 {
                shape_ok = false;
                eprintln!("NOTE: DC-ZB {zb_t:.2}s vs ADR {adr_t:.2}s at {nodes} nodes/{image}");
            }
            if nodes >= 2 && ap_t > adr_t * 1.1 {
                shape_ok = false;
                eprintln!("NOTE: DC-AP {ap_t:.2}s vs ADR {adr_t:.2}s at {nodes} nodes/{image}");
            }
        }
    }
    t.print("Figure 4: rendering time (s) on homogeneous Rogue nodes");
    println!(
        "shape check (DC-ZB competitive at 512², DC-AP same or faster from 2 nodes): {}",
        if shape_ok { "OK" } else { "CHECK NOTES" }
    );
}
