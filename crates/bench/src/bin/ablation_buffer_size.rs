//! **Ablation (non-paper)** — stream buffer granularity.
//!
//! DataCutter lets each filter negotiate its buffer size (§2 of the
//! paper). Small buffers pipeline finely but pay per-buffer framing and
//! scheduling overhead; huge buffers destroy the overlap between stages.
//! Sweep the triangle-batch size and the WPA flush capacity.

use bench::{dc_avg, large_dataset, ExperimentScale, Table};
use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, AppConfig, Grouping, PipelineSpec};
use hetsim::presets::rogue_cluster;
use std::sync::Arc;

fn main() {
    let scale = ExperimentScale { timesteps: 1 };
    let ds = large_dataset();

    let mut t = Table::new(&[
        "tri batch",
        "wpa cap",
        "time (s)",
        "E->Ra bufs",
        "Ra->M bufs",
    ]);
    for (tri_batch, wpa) in [
        (32usize, 128usize),
        (128, 512),
        (512, 2048),
        (2048, 8192),
        (8192, 32768),
    ] {
        let (topo, hosts) = rogue_cluster(4);
        let mut cfg = AppConfig::new(ds.clone(), hosts.clone(), 2, 512, 512);
        cfg.iso = bench::ISO;
        cfg.tri_batch = tri_batch;
        cfg.wpa_capacity = wpa;
        let cfg = Arc::new(cfg);
        let spec = PipelineSpec {
            grouping: Grouping::RERaSplit {
                raster: Placement::one_per_host(&hosts),
            },
            algorithm: Algorithm::ActivePixel,
            policy: WritePolicy::demand_driven(),
            merge_host: hosts[0],
        };
        let (secs, results) = dc_avg(&topo, &cfg, &spec, scale);
        let r = &results[0];
        t.row(vec![
            tri_batch.to_string(),
            wpa.to_string(),
            format!("{secs:.3}"),
            r.report
                .stream(r.to_raster.unwrap())
                .total_buffers()
                .to_string(),
            r.report.stream(r.to_merge).total_buffers().to_string(),
        ]);
    }
    t.print("Ablation: buffer granularity (RE-Ra-M, DD, ActivePixel, 4 Rogue nodes, 512x512)");
}
