//! **perf_sweep** — wall-clock timing of the data plane.
//!
//! Times scaled-down versions of the fig4/fig5/fig7 + table3 simulator
//! sweeps plus the 8-copy native stress graph, and writes/merges the
//! results into `BENCH_dataplane.json` so successive optimization PRs
//! accumulate a before/after trajectory. Every simulated image is checked
//! against the sequential reference; a mismatch (or a panic) fails the
//! run — this is the regression sentinel the `perf-smoke` CI job relies
//! on, since raw wall-clock numbers are too noisy to gate on in CI.
//!
//! Usage: `perf_sweep [--quick] [--label before|after] [--out FILE]
//! [--no-out]`
//!
//! The canonical trajectory workflow: run `--label before` on the
//! pre-optimization tree, optimize, then run `--label after`; the merged
//! file keeps both columns and the tool prints the per-sweep reduction.

use std::time::Instant;

use bench::{load_hosts, make_cfg, small_dataset, Table};
use datacutter::{NativeExecutor, Placement, WritePolicy};
use dcapp::{
    reference_image, run_pipeline, run_pipeline_exec, Algorithm, Grouping, PipelineSpec,
    SharedConfig,
};
use hetsim::presets::{rogue_blue_mix, rogue_cluster};
use hetsim::Topology;
use volume::{Dataset, Dims, FilePlacement};

/// One timed cell of a sweep.
struct Entry {
    id: String,
    wall_ms: f64,
    /// Virtual events dispatched (0 for native runs). Identical before
    /// and after a bit-identity-preserving optimization.
    events: u64,
}

struct Options {
    quick: bool,
    label: String,
    out: Option<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        label: "after".to_string(),
        out: Some("BENCH_dataplane.json".to_string()),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--label" => opts.label = args.next().expect("--label needs a value"),
            "--out" => opts.out = Some(args.next().expect("--out needs a value")),
            "--no-out" => opts.out = None,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The spec used by every simulated cell: the paper's best grouping
/// (RE–Ra split, raster everywhere) under the demand-driven policy.
fn spec(hosts: &[hetsim::HostId], alg: Algorithm, merge: hetsim::HostId) -> PipelineSpec {
    PipelineSpec {
        grouping: Grouping::RERaSplit {
            raster: Placement::one_per_host(hosts),
        },
        algorithm: alg,
        policy: WritePolicy::demand_driven(),
        merge_host: merge,
    }
}

/// Run one simulated cell, verify its image against `reference`, and
/// record the wall-clock time.
fn sim_cell(
    entries: &mut Vec<Entry>,
    id: String,
    topo: &Topology,
    cfg: &SharedConfig,
    s: &PipelineSpec,
    reference: &isosurf::Image,
) {
    let t0 = Instant::now();
    let r = run_pipeline(topo, cfg, s).expect("sim run failed");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        r.image.diff_pixels(reference),
        0,
        "REGRESSION: {id} image diverged from reference"
    );
    entries.push(Entry {
        id,
        wall_ms,
        events: r.report.events,
    });
}

fn main() {
    let opts = parse_args();
    let mut entries: Vec<Entry> = Vec::new();
    let ds = small_dataset();
    const IMAGE: u32 = 256;

    // One reference per (dataset, timestep, image) — placement and
    // topology do not affect pixels.
    let reference = {
        let (_, hosts) = rogue_cluster(2);
        reference_image(&make_cfg(ds.clone(), hosts, 2, IMAGE))
    };

    // --- fig4: homogeneous Rogue cluster scaling -------------------------
    let fig4_sizes: &[usize] = if opts.quick { &[2] } else { &[2, 4, 8] };
    for &n in fig4_sizes {
        let (topo, hosts) = rogue_cluster(n);
        let cfg = make_cfg(ds.clone(), hosts.clone(), 2, IMAGE);
        let s = spec(&hosts, Algorithm::ActivePixel, hosts[0]);
        sim_cell(
            &mut entries,
            format!("fig4/n{n}"),
            &topo,
            &cfg,
            &s,
            &reference,
        );
    }

    // --- fig5: heterogeneous mix under background load (the gated sweep) -
    let fig5_sizes: &[usize] = if opts.quick { &[2] } else { &[2, 4] };
    let fig5_bg: &[u32] = if opts.quick { &[0, 4] } else { &[0, 4, 16] };
    let fig5_algs: &[Algorithm] = if opts.quick {
        &[Algorithm::ActivePixel]
    } else {
        &[Algorithm::ZBuffer, Algorithm::ActivePixel]
    };
    for &n_each in fig5_sizes {
        for &bg in fig5_bg {
            for &alg in fig5_algs {
                let (topo, rogues, blues) = rogue_blue_mix(n_each);
                let mut hosts = rogues.clone();
                hosts.extend(&blues);
                let cfg = make_cfg(ds.clone(), hosts.clone(), 2, IMAGE);
                load_hosts(&topo, &rogues, bg);
                let s = spec(&hosts, alg, blues[0]);
                sim_cell(
                    &mut entries,
                    format!("fig5/n{n_each}_bg{bg}_{}", alg.label()),
                    &topo,
                    &cfg,
                    &s,
                    &reference,
                );
            }
        }
    }

    // --- fig7: skewed data distribution ----------------------------------
    let fig7_skews: &[u32] = if opts.quick { &[50] } else { &[0, 50] };
    for &skew in fig7_skews {
        let (topo, rogues, blues) = rogue_blue_mix(2);
        let hosts = vec![blues[0], blues[1], rogues[0], rogues[1]];
        let cfg = {
            let base = make_cfg(ds.clone(), hosts.clone(), 2, IMAGE);
            let mut c = dcapp::clone_config(&base);
            c.placement = FilePlacement::skewed(64, 4, 2, &[0, 1], &[2, 3], skew);
            std::sync::Arc::new(c)
        };
        let s = spec(&hosts, Algorithm::ActivePixel, blues[0]);
        sim_cell(
            &mut entries,
            format!("fig7/skew{skew}"),
            &topo,
            &cfg,
            &s,
            &reference,
        );
    }

    // --- table3: DD buffer distribution (fine-grained batches) -----------
    {
        let (topo, rogues, blues) = rogue_blue_mix(2);
        let mut hosts = rogues.clone();
        hosts.extend(&blues);
        let cfg = {
            let base = make_cfg(ds.clone(), hosts.clone(), 2, IMAGE);
            let mut c = dcapp::clone_config(&base);
            c.tri_batch = 96;
            std::sync::Arc::new(c)
        };
        load_hosts(&topo, &rogues, 16);
        let s = spec(&hosts, Algorithm::ActivePixel, blues[0]);
        sim_cell(
            &mut entries,
            "table3/bg16".to_string(),
            &topo,
            &cfg,
            &s,
            &reference,
        );
    }

    // --- native: 8-copy stress graph on real OS threads ------------------
    {
        let nat_ds = Dataset::generate(Dims::new(25, 25, 49), (3, 3, 4), 16, 13);
        let (topo, hosts) = rogue_cluster(4);
        let cfg = make_cfg(nat_ds, hosts.clone(), 2, 96);
        let nat_reference = reference_image(&cfg);
        let s = PipelineSpec {
            grouping: Grouping::RERaSplit {
                raster: Placement {
                    per_host: hosts.iter().map(|&h| (h, 2)).collect(),
                },
            },
            algorithm: Algorithm::ActivePixel,
            policy: WritePolicy::demand_driven(),
            merge_host: hosts[0],
        };
        let rounds = if opts.quick { 1 } else { 3 };
        let t0 = Instant::now();
        for round in 0..rounds {
            let r = run_pipeline_exec(&topo, &cfg, &s, NativeExecutor::new())
                .expect("native run failed");
            assert_eq!(
                r.image.diff_pixels(&nat_reference),
                0,
                "REGRESSION: native stress round {round} diverged"
            );
        }
        entries.push(Entry {
            id: format!("native/stress8_x{rounds}"),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            events: 0,
        });
    }

    // --- report -----------------------------------------------------------
    let mut t = Table::new(&["sweep", "wall ms", "events"]);
    for e in &entries {
        t.row(vec![
            e.id.clone(),
            format!("{:.1}", e.wall_ms),
            e.events.to_string(),
        ]);
    }
    let mode = if opts.quick { "quick" } else { "full" };
    t.print(&format!("perf_sweep ({mode}, label {})", opts.label));
    let fig5_total: f64 = entries
        .iter()
        .filter(|e| e.id.starts_with("fig5/"))
        .map(|e| e.wall_ms)
        .sum();
    entries.push(Entry {
        id: "fig5/total".to_string(),
        wall_ms: fig5_total,
        events: 0,
    });
    println!("fig5 sweep total: {fig5_total:.1} ms");

    if let Some(path) = opts.out {
        let merged = merge(&path, &opts.label, &entries);
        std::fs::write(&path, &merged).expect("write bench json");
        println!("wrote {path}");
        print_reductions(&merged);
    }
}

/// Merge `entries` under `label` into the JSON at `path` (written only by
/// this tool, so the line-oriented format below is a stable contract):
/// one object per line, `"id"` first, then one `"<label>_wall_ms"` and
/// optionally one `"events"` field per recorded label.
fn merge(path: &str, label: &str, entries: &[Entry]) -> String {
    let prior = std::fs::read_to_string(path).unwrap_or_default();
    let mut rows: Vec<(String, Vec<(String, f64)>)> = prior.lines().filter_map(parse_row).collect();
    for e in entries {
        let key = format!("{label}_wall_ms");
        let row = match rows.iter_mut().find(|(id, _)| *id == e.id) {
            Some(r) => &mut r.1,
            None => {
                rows.push((e.id.clone(), Vec::new()));
                &mut rows.last_mut().expect("just pushed").1
            }
        };
        match row.iter_mut().find(|(k, _)| *k == key) {
            Some(kv) => kv.1 = e.wall_ms,
            None => row.push((key, e.wall_ms)),
        }
        if e.events > 0 {
            match row.iter_mut().find(|(k, _)| k == "events") {
                Some(kv) => kv.1 = e.events as f64,
                None => row.push(("events".to_string(), e.events as f64)),
            }
        }
    }
    let mut out = String::from("[\n");
    for (i, (id, kvs)) in rows.iter().enumerate() {
        out.push_str(&format!("  {{\"id\": \"{id}\""));
        for (k, v) in kvs {
            if k == "events" {
                out.push_str(&format!(", \"{k}\": {}", *v as u64));
            } else {
                out.push_str(&format!(", \"{k}\": {v:.1}"));
            }
        }
        out.push('}');
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Parse one row previously written by [`merge`].
fn parse_row(line: &str) -> Option<(String, Vec<(String, f64)>)> {
    let id_key = line.find("\"id\": \"")?;
    let rest = &line[id_key + 7..];
    let id = rest[..rest.find('"')?].to_string();
    let mut kvs = Vec::new();
    let mut s = &rest[rest.find('"')? + 1..];
    while let Some(q) = s.find('"') {
        let after = &s[q + 1..];
        let Some(endq) = after.find('"') else { break };
        let key = after[..endq].to_string();
        let after_colon = &after[endq + 1..];
        let Some(c) = after_colon.find(':') else {
            break;
        };
        let tail = after_colon[c + 1..].trim_start();
        let num: String = tail
            .chars()
            .take_while(|ch| ch.is_ascii_digit() || *ch == '.' || *ch == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            kvs.push((key, v));
        }
        s = &after_colon[c + 1..];
    }
    Some((id, kvs))
}

/// Print the before→after reduction for every row carrying both labels.
fn print_reductions(json: &str) {
    let mut printed_header = false;
    for (id, kvs) in json.lines().filter_map(parse_row) {
        let before = kvs
            .iter()
            .find(|(k, _)| k == "before_wall_ms")
            .map(|kv| kv.1);
        let after = kvs
            .iter()
            .find(|(k, _)| k == "after_wall_ms")
            .map(|kv| kv.1);
        if let (Some(b), Some(a)) = (before, after) {
            if !printed_header {
                println!("\nbefore -> after:");
                printed_header = true;
            }
            let pct = (1.0 - a / b) * 100.0;
            println!("  {id}: {b:.1} ms -> {a:.1} ms ({pct:+.1}% reduction)");
        }
    }
}
