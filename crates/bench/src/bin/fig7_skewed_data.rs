//! **Figure 7** — skewed data distribution: 2 Blue + 2 Rogue nodes;
//! P ∈ {0, 25, 50, 75}% of the files are moved from the Blue nodes onto
//! the Rogue nodes; three groupings × three policies; active-pixel
//! algorithm, 2048² image.
//!
//! Paper shapes: RERa–M is the most sensitive to skew (SPMD — the run
//! lasts as long as the node with the most data); R–ERa–M decouples
//! retrieval from processing; RE–Ra–M does that while moving less data,
//! so it is the best configuration; DD helps further.

use bench::{dc_avg, large_dataset, make_cfg, ExperimentScale, Table};
use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::presets::rogue_blue_mix;
use volume::FilePlacement;

fn main() {
    let scale = ExperimentScale::default();
    let ds = large_dataset();
    let mut rera_sensitivity = Vec::new();
    let mut rera_split_sensitivity = Vec::new();

    for skew in [0u32, 25, 50, 75] {
        let mut t = Table::new(&["config", "RR", "WRR", "DD"]);
        for grouping_label in ["RERa-M", "R-ERa-M", "RE-Ra-M"] {
            let mut row = vec![grouping_label.to_string()];
            for policy in [
                WritePolicy::RoundRobin,
                WritePolicy::WeightedRoundRobin,
                WritePolicy::demand_driven(),
            ] {
                let (topo, rogues, blues) = rogue_blue_mix(2);
                // Storage node order: blue0, blue1, rogue0, rogue1 — files
                // move FROM blue (0,1) TO rogue (2,3).
                let hosts = vec![blues[0], blues[1], rogues[0], rogues[1]];
                let cfg = {
                    let base = make_cfg(ds.clone(), hosts.clone(), 2, 2048);
                    let mut c = dcapp::clone_config(&base);
                    c.placement = FilePlacement::skewed(64, 4, 2, &[0, 1], &[2, 3], skew);
                    std::sync::Arc::new(c)
                };
                let compute = Placement::one_per_host(&hosts);
                let spec = PipelineSpec {
                    grouping: match grouping_label {
                        "RERa-M" => Grouping::RERaM,
                        "R-ERa-M" => Grouping::REraSplit { era: compute },
                        _ => Grouping::RERaSplit { raster: compute },
                    },
                    algorithm: Algorithm::ActivePixel,
                    policy,
                    merge_host: blues[0],
                };
                let (secs, _) = dc_avg(&topo, &cfg, &spec, scale);
                if policy.label() == "DD" {
                    match grouping_label {
                        "RERa-M" => rera_sensitivity.push(secs),
                        "R-ERa-M" => rera_split_sensitivity.push(secs),
                        _ => {}
                    }
                }
                row.push(format!("{secs:.2}"));
            }
            t.row(row);
        }
        t.print(&format!(
            "Figure 7: skewed {skew}% (files moved Blue -> Rogue), 2 Blue + 2 Rogue, ActivePixel 2048x2048"
        ));
    }

    let fused = rera_sensitivity.last().unwrap() / rera_sensitivity[0];
    let decoupled = rera_split_sensitivity.last().unwrap() / rera_split_sensitivity[0];
    println!("\nskew sensitivity 0% -> 75% (DD): RERa-M {fused:.2}x, R-ERa-M {decoupled:.2}x");
    println!(
        "shape check (fused SPMD config sensitive to skew, fully decoupled config \
         nearly flat): {}",
        if fused > decoupled && fused > 1.1 {
            "OK"
        } else {
            "CHECK"
        }
    );
    println!(
        "note: the paper's RERa-M grew more steeply because its runs were I/O-bound \
         (2.5 GB/timestep); here compute dominates and the skew target (Rogue) has \
         the faster single-thread CPU, which partially compensates"
    );
}
