//! **compositing_sweep** — the merge-bottleneck trajectory.
//!
//! Scales the raster stage to 4/16/64 copies under the z-buffer algorithm
//! (whose merge traffic grows linearly with copy count — every copy ships
//! its full dense buffer) and times the serial single-sink merge (`M`)
//! against tile-owned compositing (`Mt` group + assembler). Virtual
//! elapsed time is the headline number: it is deterministic, so the
//! serial-vs-tiled ratio is a stable measure of how much of the merge
//! fold the tile group takes off the critical path.
//!
//! Every cell is a correctness gate: the tiled image is FNV-digested and
//! compared against the serial image's digest, and the serial image is
//! diffed against the sequential reference. Any drift fails the run —
//! this is the digest sentinel the `perf-smoke` CI job relies on.
//!
//! Usage: `compositing_sweep [--quick] [--out FILE] [--no-out]`
//! Writes `BENCH_compositing.json` (one row per cell, fresh each run).

use std::time::Instant;

use bench::{make_cfg, small_dataset, Table};
use datacutter::{Placement, WritePolicy};
use dcapp::{reference_image, run_pipeline, Algorithm, Grouping, PipelineSpec};
use hetsim::presets::rogue_cluster;

/// FNV-1a over the image dimensions and pixels (the same fold the
/// bit-identity test suites pin).
fn image_digest(img: &isosurf::Image) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&(img.width as u64).to_le_bytes());
    eat(&(img.height as u64).to_le_bytes());
    for px in &img.data {
        eat(px);
    }
    h
}

struct Row {
    id: String,
    virtual_ms: f64,
    wall_ms: f64,
    events: u64,
    digest: u64,
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = Some("BENCH_compositing.json".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = Some(args.next().expect("--out needs a value")),
            "--no-out" => out = None,
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    const IMAGE: u32 = 192;
    const HOSTS: usize = 8;
    let ds = small_dataset();
    let ra_counts: &[usize] = if quick { &[4, 16] } else { &[4, 16, 64] };

    let (topo, hosts) = rogue_cluster(HOSTS);
    let cfg = make_cfg(ds, hosts.clone(), 2, IMAGE);
    let reference = reference_image(&cfg);

    let mut rows: Vec<Row> = Vec::new();
    for &n_ra in ra_counts {
        let per = n_ra.div_ceil(HOSTS).max(1) as u32;
        let raster = Placement {
            per_host: hosts.iter().map(|&h| (h, per)).collect(),
        };
        // One merge copy set per host on the `merge_copies` strongest
        // hosts (homogeneous here, so simply the first four).
        let merge = Placement::one_per_host(&hosts[..cfg.merge_copies.min(HOSTS)]);

        let cell = |id: String, grouping: Grouping| -> Row {
            let s = PipelineSpec {
                grouping,
                algorithm: Algorithm::ZBuffer,
                policy: WritePolicy::demand_driven(),
                merge_host: hosts[0],
            };
            let t0 = Instant::now();
            let r = run_pipeline(&topo, &cfg, &s).expect("sim run failed");
            Row {
                id,
                virtual_ms: r.elapsed.as_secs_f64() * 1e3,
                wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                events: r.report.events,
                digest: {
                    assert_eq!(
                        r.image.diff_pixels(&reference),
                        0,
                        "REGRESSION: image diverged from the sequential reference"
                    );
                    image_digest(&r.image)
                },
            }
        };

        let serial = cell(
            format!("compositing/ra{n_ra}/serial"),
            Grouping::RERaSplit {
                raster: raster.clone(),
            },
        );
        let tiled = cell(
            format!("compositing/ra{n_ra}/tilehash"),
            Grouping::TileComposite {
                raster,
                merge: merge.clone(),
            },
        );
        assert_eq!(
            tiled.digest, serial.digest,
            "DIGEST DRIFT at ra{n_ra}: tile-hash compositing no longer \
             bit-identical to the serial merge"
        );
        println!(
            "ra{n_ra}: serial {:.1} ms -> tiled {:.1} ms virtual ({:.2}x), digest {:#018x}",
            serial.virtual_ms,
            tiled.virtual_ms,
            serial.virtual_ms / tiled.virtual_ms,
            serial.digest,
        );
        rows.push(serial);
        rows.push(tiled);
    }

    let mut t = Table::new(&["cell", "virtual ms", "wall ms", "events"]);
    for r in &rows {
        t.row(vec![
            r.id.clone(),
            format!("{:.1}", r.virtual_ms),
            format!("{:.1}", r.wall_ms),
            r.events.to_string(),
        ]);
    }
    t.print(&format!(
        "compositing_sweep ({})",
        if quick { "quick" } else { "full" }
    ));

    if let Some(path) = out {
        let mut json = String::from("[\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "  {{\"id\": \"{}\", \"virtual_ms\": {:.1}, \"wall_ms\": {:.1}, \
                 \"events\": {}, \"image_digest\": \"{:#018x}\"}}{}\n",
                r.id,
                r.virtual_ms,
                r.wall_ms,
                r.events,
                r.digest,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("]\n");
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}
