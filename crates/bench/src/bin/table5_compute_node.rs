//! **Table 5** — adding an 8-way compute node (Deathstar) behind a slow
//! Fast-Ethernet uplink to 1/2/4/8 two-way Red data nodes; active-pixel
//! algorithm, 2048² image; RR vs WRR vs DD.
//!
//! Paper shapes: RE–Ra–M beats R–ERa–M (less data over the slow uplink);
//! WRR is the best policy (weights the 7 copies on the 8-way node without
//! DD's acknowledgment traffic over the slow link); the benefit of the
//! compute node fades as the number of data nodes grows.

use bench::{dc_avg, large_dataset, make_cfg, ExperimentScale, Table};
use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::presets::red_with_deathstar;

fn main() {
    let scale = ExperimentScale::default();
    let ds = large_dataset();

    let mut t = Table::new(&["data nodes", "config", "RR", "WRR", "DD"]);
    let mut wrr_wins = 0usize;
    let mut rr_never_best = true;
    let mut re_ra_rows = 0usize;
    let mut cells = 0usize;
    let mut re_ra_beats = 0usize;
    let mut rows = 0usize;

    for n_red in [1usize, 2, 4, 8] {
        let mut per_config = Vec::new();
        for split_read in [false, true] {
            let mut row = vec![
                n_red.to_string(),
                if split_read { "R-ERa-M" } else { "RE-Ra-M" }.to_string(),
            ];
            let mut times = Vec::new();
            for policy in [
                WritePolicy::RoundRobin,
                WritePolicy::WeightedRoundRobin,
                WritePolicy::demand_driven(),
            ] {
                let (topo, reds, deathstar) = red_with_deathstar(n_red);
                let cfg = make_cfg(ds.clone(), reds.clone(), 1, 2048);
                // Compute copies: 1 per data node + 7 on the 8-way node.
                let mut per_host: Vec<(hetsim::HostId, u32)> =
                    reds.iter().map(|&h| (h, 1)).collect();
                per_host.push((deathstar, 7));
                let compute = Placement { per_host };
                let spec = PipelineSpec {
                    grouping: if split_read {
                        Grouping::REraSplit { era: compute }
                    } else {
                        Grouping::RERaSplit { raster: compute }
                    },
                    algorithm: Algorithm::ActivePixel,
                    policy,
                    merge_host: deathstar,
                };
                let (secs, _) = dc_avg(&topo, &cfg, &spec, scale);
                times.push(secs);
                row.push(format!("{secs:.2}"));
            }
            cells += 1;
            let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
            if times[0] <= best * 1.001 {
                rr_never_best = false;
            }
            // WRR must be the winner in the configuration the paper
            // highlights it for (RE-Ra-M).
            if !split_read {
                re_ra_rows += 1;
                if times[1] <= best * 1.05 {
                    wrr_wins += 1;
                }
            }
            per_config.push((times[0], best));
            t.row(row);
            rows += 1;
        }
        if per_config[0].1 <= per_config[1].1 {
            re_ra_beats += 1;
        }
    }
    let _ = rows;
    t.print(
        "Table 5: execution time (s), Red data nodes + 8-way compute node (ActivePixel, 2048x2048)",
    );
    println!(
        "WRR best in {wrr_wins}/{re_ra_rows} RE-Ra-M rows; RR never best: {rr_never_best}; \
         RE-Ra-M beats R-ERa-M in {re_ra_beats}/4 node counts ({cells} cells total)"
    );
    println!(
        "NOTE: the paper finds RE-Ra-M better in ALL cases because its chunk volume\n\
         (2.5 GB/timestep) dwarfs the triangle volume; at our emulation scale the\n\
         volume ratio is ~1.5:1, so parallelizing extraction on the 8-way node can\n\
         win at low data-node counts. The policy shape (weighting the 8-way node\n\
         matters; plain RR underuses it) is the reproducible claim."
    );
    println!(
        "shape check (WRR wins RE-Ra-M rows; RR never best): {}",
        if wrr_wins == re_ra_rows && rr_never_best {
            "OK"
        } else {
            "CHECK"
        }
    );
}
