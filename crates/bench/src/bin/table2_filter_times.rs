//! **Table 2** — processing times for the isosurface rendering filters.
//!
//! Same setup as Table 1: four isolated filters on four hosts, small
//! dataset, 2048×2048 image. We report the per-filter *work* (CPU seconds
//! charged on a dedicated reference-speed core), which is what the paper's
//! per-filter processing times measure.

use bench::{make_cfg, small_dataset, Table};
use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::presets::rogue_cluster;
use volume::FilePlacement;

fn main() {
    let (topo, hosts) = rogue_cluster(4);
    let cfg = {
        let base = make_cfg(small_dataset(), vec![hosts[0]], 2, 2048);
        let mut c = dcapp::clone_config(&base);
        c.placement = FilePlacement::balanced(64, 1, 2);
        std::sync::Arc::new(c)
    };

    let mut t = Table::new(&["algorithm", "R", "E", "Ra", "M", "sum"]);
    let mut ra_work = [0.0f64; 2];
    let mut e_work = [0.0f64; 2];
    for (k, alg) in [Algorithm::ZBuffer, Algorithm::ActivePixel]
        .into_iter()
        .enumerate()
    {
        let spec = PipelineSpec {
            grouping: Grouping::FourStage {
                extract: Placement::on_host(hosts[1], 1),
                raster: Placement::on_host(hosts[2], 1),
            },
            algorithm: alg,
            policy: WritePolicy::RoundRobin,
            merge_host: hosts[3],
        };
        let r = dcapp::run_pipeline(&topo, &cfg, &spec).expect("run failed");
        let works: Vec<f64> = r
            .filters
            .iter()
            .map(|&f| r.report.filter_work(f).as_secs_f64())
            .collect();
        ra_work[k] = works[2];
        e_work[k] = works[1];
        t.row(vec![
            alg.label().to_string(),
            format!("{:.3}", works[0]),
            format!("{:.3}", works[1]),
            format!("{:.3}", works[2]),
            format!("{:.3}", works[3]),
            format!("{:.3}", works.iter().sum::<f64>()),
        ]);
    }
    t.print("Table 2: filter processing times (CPU work, seconds) — R-E-Ra-M, 2048x2048");

    println!("paper shape: Ra is by far the most expensive filter, E second");
    for k in 0..2 {
        assert!(
            ra_work[k] > 3.0 * e_work[k],
            "raster should dominate: Ra={} E={}",
            ra_work[k],
            e_work[k]
        );
    }
    println!("shape check: OK");
}
