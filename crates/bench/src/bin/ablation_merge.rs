//! **Ablation (non-paper, §6 of the paper)** — the merge bottleneck.
//!
//! "As the number of copies of other filters or the number of nodes
//! increases, the merge filter becomes a bottleneck." Measure the merge
//! stream volume and the merge copy's busy/stall profile as the node
//! count grows, for both algorithms.

use bench::{dc_avg, large_dataset, make_cfg, ExperimentScale, Table};
use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, Grouping, PipelineSpec};
use hetsim::presets::rogue_cluster;

fn main() {
    let scale = ExperimentScale { timesteps: 1 };
    let ds = large_dataset();

    let mut t = Table::new(&[
        "nodes",
        "alg",
        "time (s)",
        "merge MB",
        "merge work (s)",
        "merge stall (s)",
    ]);
    for nodes in [2usize, 4, 8, 16] {
        for alg in [Algorithm::ZBuffer, Algorithm::ActivePixel] {
            let (topo, hosts) = rogue_cluster(nodes);
            let cfg = make_cfg(ds.clone(), hosts.clone(), 2, 1024);
            let spec = PipelineSpec {
                grouping: Grouping::RERaSplit {
                    raster: Placement::one_per_host(&hosts),
                },
                algorithm: alg,
                policy: WritePolicy::demand_driven(),
                merge_host: hosts[0],
            };
            let (secs, results) = dc_avg(&topo, &cfg, &spec, scale);
            let r = &results[0];
            let merge_id = *r.filters.last().unwrap();
            let m = &r.report.copies_of(merge_id)[0].counters;
            t.row(vec![
                nodes.to_string(),
                alg.label().to_string(),
                format!("{secs:.2}"),
                format!(
                    "{:.1}",
                    r.report.stream(r.to_merge).total_bytes() as f64 / 1e6
                ),
                format!("{:.2}", m.work.as_secs_f64()),
                format!("{:.2}", m.read_wait.as_secs_f64()),
            ]);
        }
    }
    t.print("Ablation: merge bottleneck vs node count (RE-Ra-M, DD, 1024x1024)");
    println!(
        "expected: z-buffer merge volume grows linearly with nodes (dense buffers\n\
         per copy) while active-pixel volume stays ~flat (winners only, duplicates\n\
         shrink per copy); at high node counts the z-buffer run time turns upward"
    );
}
