//! # bench — experiment harnesses for the paper's evaluation
//!
//! One binary per table/figure (see `src/bin/`); this library holds the
//! shared pieces: the reference datasets, run helpers averaging over
//! timesteps, and plain-text table rendering.
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table 1 (buffer counts/volumes)        | `table1_buffers` |
//! | Table 2 (filter processing times)      | `table2_filter_times` |
//! | Figure 4 (ADR vs DC, homogeneous)      | `fig4_adr_homogeneous` |
//! | Figure 5 (ADR vs DC, heterogeneous)    | `fig5_adr_heterogeneous` |
//! | Table 3 (DD buffers per node class)    | `table3_dd_buffers` |
//! | Table 4 (groupings × policies × load)  | `table4_configs_bgload` |
//! | Table 5 (8-way compute node, RR/WRR/DD)| `table5_compute_node` |
//! | Figure 7 (skewed data distribution)    | `fig7_skewed_data` |
//! | Ablations (non-paper)                  | `ablation_*` |

#![warn(missing_docs)]

pub mod datasets;
pub mod runs;
pub mod table;

pub use datasets::{large_dataset, small_dataset, ISO, QUICK_TIMESTEPS};
pub use runs::{adr_avg, dc_avg, load_hosts, make_cfg, ExperimentScale};
pub use table::Table;
