//! Running pipelines and validating their output.

use datacutter::{ExecutorChoice, FaultOptions, Run, RunError, RunReport};
use hetsim::{SimDuration, Topology};
use isosurf::Image;

use crate::config::{AppConfig, ExecutorKind, SharedConfig};
use crate::pipeline::{build_pipeline, Pipeline, PipelineSpec};

/// Build the executor a config asks for: `sim` (deterministic virtual
/// time), `native` (one OS thread per copy) or `tasked` (waker-parked
/// tasks over a pool of `worker_threads` carriers, capped at
/// `max_task_copies` registered copies). Call [`AppConfig::validate`]
/// first — the knobs are range-checked there, not here.
pub fn executor_for(cfg: &AppConfig) -> ExecutorChoice {
    match cfg.executor {
        ExecutorKind::Sim => datacutter::SimExecutor::new().into(),
        ExecutorKind::Native => datacutter::NativeExecutor::new().into(),
        ExecutorKind::Tasked => {
            let e = if cfg.worker_threads > 0 {
                datacutter::TaskedExecutor::with_workers(cfg.worker_threads)
            } else {
                datacutter::TaskedExecutor::new()
            };
            e.max_tasks(cfg.max_task_copies).into()
        }
    }
}

/// Outcome of one pipeline run (one unit of work = one timestep rendered).
pub struct PipelineResult {
    /// End-to-end virtual time.
    pub elapsed: SimDuration,
    /// Framework metrics.
    pub report: RunReport,
    /// The rendered image.
    pub image: Image,
    /// The stream ids of interest (copied from the pipeline handles).
    pub to_raster: Option<datacutter::StreamId>,
    /// Stream into the merge filter.
    pub to_merge: datacutter::StreamId,
    /// Filter ids in pipeline order.
    pub filters: Vec<datacutter::FilterId>,
}

/// Build and run `spec` once on `topo`.
pub fn run_pipeline(
    topo: &Topology,
    cfg: &SharedConfig,
    spec: &PipelineSpec,
) -> Result<PipelineResult, RunError> {
    run_pipeline_exec(topo, cfg, spec, datacutter::SimExecutor::new())
}

/// Build and run `spec` once on `topo` on an explicit execution substrate:
/// pass a [`datacutter::SimExecutor`] for the deterministic virtual-time
/// run or a [`datacutter::NativeExecutor`] to execute the same pipeline on
/// real OS threads. The rendered image is bit-identical on both (merging
/// is order-independent); only the timing/metrics semantics differ.
pub fn run_pipeline_exec(
    topo: &Topology,
    cfg: &SharedConfig,
    spec: &PipelineSpec,
    exec: impl Into<ExecutorChoice>,
) -> Result<PipelineResult, RunError> {
    let Pipeline {
        graph,
        image,
        to_raster,
        to_merge,
        filters,
    } = build_pipeline(cfg, spec);
    let report = Run::new(graph)
        .memory_budget(cfg.memory_budget_bytes)
        .storage_retries(cfg.storage_retry_budget)
        .checksum_spills(cfg.checksum_spills)
        .executor(exec)
        .go(topo)?;
    let mut images = std::mem::take(&mut *image.lock());
    assert_eq!(images.len(), 1, "single-UOW run deposits exactly one image");
    Ok(PipelineResult {
        elapsed: report.elapsed,
        report,
        image: images.pop().expect("one image"),
        to_raster,
        to_merge,
        filters,
    })
}

/// Build and run `spec` once on `topo` under a fault plan: hosts crash,
/// stall, or lose messages per `opts`, and the runtime's recovery
/// machinery (liveness timeouts, writer eviction, demand-driven buffer
/// replay) keeps the pipeline going. Under the demand-driven policy a
/// crash of an extract/raster host replays every lost chunk to a
/// surviving copy, so the rendered image is bit-identical to the
/// fault-free run; under RR/WRR the run completes degraded with losses
/// tallied in `report.faults` — unless the options request
/// [`Recovery::Lossless`](datacutter::Recovery) (see
/// [`lossless_options`]), in which case retention + replay make every
/// policy complete with `lost == 0`.
pub fn run_pipeline_faulted(
    topo: &Topology,
    cfg: &SharedConfig,
    spec: &PipelineSpec,
    opts: FaultOptions,
) -> Result<PipelineResult, RunError> {
    run_pipeline_faulted_exec(topo, cfg, spec, opts, datacutter::SimExecutor::new())
}

/// [`run_pipeline_faulted`] on an explicit execution substrate: the same
/// fault plan drives either the deterministic virtual-time run or a
/// wall-clock chaos run on real OS threads
/// ([`datacutter::NativeExecutor`]; build the options with
/// [`datacutter::NativeFaultPlan`]). On the native substrate the plan's
/// times are wall-clock nanoseconds since run start, so crash/stall
/// instants should be scaled to real pipeline durations.
pub fn run_pipeline_faulted_exec(
    topo: &Topology,
    cfg: &SharedConfig,
    spec: &PipelineSpec,
    opts: FaultOptions,
    exec: impl Into<ExecutorChoice>,
) -> Result<PipelineResult, RunError> {
    let Pipeline {
        graph,
        image,
        to_raster,
        to_merge,
        filters,
    } = build_pipeline(cfg, spec);
    let report = Run::new(graph)
        .memory_budget(cfg.memory_budget_bytes)
        .storage_retries(cfg.storage_retry_budget)
        .checksum_spills(cfg.checksum_spills)
        .faults(opts)
        .executor(exec)
        .go(topo)?;
    let mut images = std::mem::take(&mut *image.lock());
    assert_eq!(images.len(), 1, "single-UOW run deposits exactly one image");
    Ok(PipelineResult {
        elapsed: report.elapsed,
        report,
        image: images.pop().expect("one image"),
        to_raster,
        to_merge,
        filters,
    })
}

/// Upgrade fault options to [`Recovery::Lossless`](datacutter::Recovery)
/// with the config's retention sizing: producers retain up to
/// `cfg.retention_depth` sent-but-unsettled replicas per stream, crashed
/// consumers are replayed or their traffic redelivered, and the run is
/// expected to finish with `report.faults.lost() == 0` and an image
/// bit-identical to the fault-free run.
pub fn lossless_options(cfg: &SharedConfig, opts: FaultOptions) -> FaultOptions {
    opts.lossless().retention_depth(cfg.retention_depth)
}

/// Result of a multi-UOW run: one image per unit of work (consecutive
/// timesteps), cumulative metrics, and per-UOW elapsed times.
pub struct MultiUowResult {
    /// Framework metrics (cumulative over all UOWs).
    pub report: RunReport,
    /// One rendered image per UOW, in order.
    pub images: Vec<isosurf::Image>,
    /// Per-UOW elapsed virtual time.
    pub uow_elapsed: Vec<SimDuration>,
}

/// Run `uows` consecutive units of work in a **single** simulation: filter
/// copies stay resident and cycle through `init` → `process` → `finalize`
/// per UOW, rendering timesteps `cfg.timestep`, `cfg.timestep + 1`, ... —
/// the paper's "five consecutive timesteps" workload as one run.
pub fn run_pipeline_uows(
    topo: &Topology,
    cfg: &SharedConfig,
    spec: &PipelineSpec,
    uows: u32,
) -> Result<MultiUowResult, RunError> {
    let Pipeline { graph, image, .. } = build_pipeline(cfg, spec);
    let report = Run::new(graph)
        .memory_budget(cfg.memory_budget_bytes)
        .storage_retries(cfg.storage_retry_budget)
        .checksum_spills(cfg.checksum_spills)
        .uows(uows)
        .go(topo)?;
    let images = std::mem::take(&mut *image.lock());
    assert_eq!(images.len(), uows as usize, "one image per unit of work");
    let uow_elapsed = report.uow_elapsed();
    Ok(MultiUowResult {
        report,
        images,
        uow_elapsed,
    })
}

/// Run `spec` for `timesteps` consecutive timesteps (fresh simulation per
/// timestep, as the paper clears caches between runs) and return the
/// per-timestep results. The config's `timestep` field is overridden.
pub fn run_timesteps(
    topo: &Topology,
    cfg: &SharedConfig,
    spec: &PipelineSpec,
    timesteps: std::ops::Range<u32>,
) -> Result<Vec<PipelineResult>, RunError> {
    let mut out = Vec::new();
    for t in timesteps {
        let mut c = clone_config(cfg);
        c.timestep = t;
        let c: SharedConfig = std::sync::Arc::new(c);
        out.push(run_pipeline(topo, &c, spec)?);
    }
    Ok(out)
}

/// Average elapsed time of a result set, in seconds.
pub fn avg_elapsed_secs(results: &[PipelineResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(|r| r.elapsed.as_secs_f64()).sum::<f64>() / results.len() as f64
}

/// The sequential reference image for `cfg` (single-node ground truth).
/// Honors the range query at chunk granularity, exactly like the
/// distributed read filters.
pub fn reference_image(cfg: &SharedConfig) -> Image {
    let field = cfg.dataset.field(cfg.species, cfg.timestep);
    if cfg.query.is_none() {
        return isosurf::render_zbuffer(&field, &cfg.camera, cfg.iso, &cfg.material);
    }
    let layout = cfg.dataset.layout();
    let mut tris = Vec::new();
    for &chunk in cfg.selected_chunks() {
        let info = layout.info(chunk);
        let sub = layout.extract(&field, chunk);
        isosurf::extract(&sub, info.cell_origin, cfg.iso, &mut tris);
    }
    let mut zb = isosurf::ZBuffer::new(cfg.camera.width, cfg.camera.height);
    isosurf::render::raster_into_zbuffer(&tris, &cfg.camera, &cfg.material, &mut zb);
    zb.to_image(isosurf::BACKGROUND)
}

/// Clone an `AppConfig` (datasets share storage; the rest is plain data).
/// Lazily built derived state — the selected-chunk set and the chunk
/// cache — starts fresh in the clone: a config whose query or knobs are
/// about to change must not inherit state computed for the old ones.
pub fn clone_config(cfg: &SharedConfig) -> crate::config::AppConfig {
    crate::config::AppConfig {
        dataset: cfg.dataset.clone(),
        iso: cfg.iso,
        species: cfg.species,
        timestep: cfg.timestep,
        query: cfg.query,
        camera: cfg.camera,
        material: cfg.material,
        cost: cfg.cost,
        tri_batch: cfg.tri_batch,
        wpa_capacity: cfg.wpa_capacity,
        zb_band_bytes: cfg.zb_band_bytes,
        tile_size: cfg.tile_size,
        merge_copies: cfg.merge_copies,
        retention_depth: cfg.retention_depth,
        executor: cfg.executor,
        worker_threads: cfg.worker_threads,
        max_task_copies: cfg.max_task_copies,
        memory_budget_bytes: cfg.memory_budget_bytes,
        storage_retry_budget: cfg.storage_retry_budget,
        checksum_spills: cfg.checksum_spills,
        cache_capacity: cfg.cache_capacity,
        prefetch_depth: cfg.prefetch_depth,
        placement: cfg.placement.clone(),
        storage_hosts: cfg.storage_hosts.clone(),
        selected_cache: std::sync::OnceLock::new(),
        chunk_cache: std::sync::OnceLock::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, AppConfig};
    use crate::pipeline::Grouping;
    use datacutter::{Placement, WritePolicy};
    use hetsim::presets::rogue_cluster;
    use std::sync::Arc;
    use volume::{Dataset, Dims};

    fn small_setup(nodes: usize, width: u32) -> (Topology, SharedConfig) {
        let (topo, hosts) = rogue_cluster(nodes);
        let ds = Dataset::generate(Dims::new(25, 25, 25), (2, 2, 2), 8, 11);
        let cfg = AppConfig::new(ds, hosts, 2, width, width);
        (topo, Arc::new(cfg))
    }

    fn spec(topo: &Topology, cfg: &SharedConfig, g: Grouping, alg: Algorithm) -> PipelineSpec {
        let _ = topo;
        PipelineSpec {
            grouping: g,
            algorithm: alg,
            policy: WritePolicy::demand_driven(),
            merge_host: cfg.storage_hosts[0],
        }
    }

    #[test]
    fn rera_m_matches_reference() {
        let (topo, cfg) = small_setup(2, 96);
        let s = spec(&topo, &cfg, Grouping::RERaM, Algorithm::ActivePixel);
        let r = run_pipeline(&topo, &cfg, &s).unwrap();
        let reference = reference_image(&cfg);
        assert_eq!(r.image.diff_pixels(&reference), 0);
        assert!(r.elapsed > SimDuration::ZERO);
    }

    #[test]
    fn re_ra_m_matches_reference_both_algorithms() {
        let (topo, cfg) = small_setup(2, 96);
        for alg in [Algorithm::ZBuffer, Algorithm::ActivePixel] {
            let s = spec(
                &topo,
                &cfg,
                Grouping::RERaSplit {
                    raster: Placement::one_per_host(&cfg.storage_hosts),
                },
                alg,
            );
            let r = run_pipeline(&topo, &cfg, &s).unwrap();
            let reference = reference_image(&cfg);
            assert_eq!(r.image.diff_pixels(&reference), 0, "algorithm {alg:?}");
        }
    }

    #[test]
    fn r_era_m_matches_reference() {
        let (topo, cfg) = small_setup(2, 96);
        let s = spec(
            &topo,
            &cfg,
            Grouping::REraSplit {
                era: Placement::one_per_host(&cfg.storage_hosts),
            },
            Algorithm::ActivePixel,
        );
        let r = run_pipeline(&topo, &cfg, &s).unwrap();
        assert_eq!(r.image.diff_pixels(&reference_image(&cfg)), 0);
    }

    #[test]
    fn four_stage_matches_reference() {
        let (topo, cfg) = small_setup(4, 96);
        let hosts = &cfg.storage_hosts;
        let s = spec(
            &topo,
            &cfg,
            Grouping::FourStage {
                extract: Placement::on_host(hosts[1], 1),
                raster: Placement::on_host(hosts[2], 1),
            },
            Algorithm::ZBuffer,
        );
        // Only host 0 holds data in this test: rebuild config with one
        // storage host but a 4-host topology.
        let mut c = clone_config(&cfg);
        c.storage_hosts = vec![hosts[0]];
        c.placement = volume::FilePlacement::balanced(8, 1, 2);
        let c: SharedConfig = Arc::new(c);
        let mut s2 = s;
        s2.merge_host = hosts[3];
        let r = run_pipeline(&topo, &c, &s2).unwrap();
        assert_eq!(r.image.diff_pixels(&reference_image(&c)), 0);
        // Four filters + merge stream wiring present.
        assert_eq!(r.filters.len(), 4);
        assert!(r.to_raster.is_some());
    }

    #[test]
    fn multiple_raster_copies_still_consistent() {
        // The paper's headline consistency property: the output must not
        // depend on how many transparent copies run.
        let (topo, cfg) = small_setup(4, 96);
        for copies in [1u32, 2, 3] {
            let s = spec(
                &topo,
                &cfg,
                Grouping::RERaSplit {
                    raster: Placement {
                        per_host: cfg.storage_hosts.iter().map(|&h| (h, copies)).collect(),
                    },
                },
                Algorithm::ActivePixel,
            );
            let r = run_pipeline(&topo, &cfg, &s).unwrap();
            assert_eq!(
                r.image.diff_pixels(&reference_image(&cfg)),
                0,
                "copies per host = {copies}"
            );
        }
    }

    #[test]
    fn zbuffer_moves_more_merge_bytes_than_active_pixel() {
        // Table 1's shape: the z-buffer algorithm sends fewer, larger
        // buffers and a greater total volume to the merge filter.
        let (topo, cfg) = small_setup(2, 128);
        let mk = |alg| {
            spec(
                &topo,
                &cfg,
                Grouping::RERaSplit {
                    raster: Placement::one_per_host(&cfg.storage_hosts),
                },
                alg,
            )
        };
        let zb = run_pipeline(&topo, &cfg, &mk(Algorithm::ZBuffer)).unwrap();
        let ap = run_pipeline(&topo, &cfg, &mk(Algorithm::ActivePixel)).unwrap();
        let zb_bytes = zb.report.stream(zb.to_merge).total_bytes();
        let ap_bytes = ap.report.stream(ap.to_merge).total_bytes();
        assert!(zb_bytes > ap_bytes, "zb {zb_bytes} vs ap {ap_bytes}");
    }

    #[test]
    fn range_query_renders_selected_chunks_only() {
        let (topo, cfg) = small_setup(2, 96);
        // Query the lower octant of the volume.
        let mut c = clone_config(&cfg);
        c.query = Some(volume::CellRange {
            lo: (0, 0, 0),
            hi: (12, 12, 12),
        });
        let cfg_q: SharedConfig = Arc::new(c);
        let s = spec(
            &topo,
            &cfg_q,
            Grouping::RERaSplit {
                raster: Placement::one_per_host(&cfg_q.storage_hosts),
            },
            Algorithm::ActivePixel,
        );
        let full = run_pipeline(&topo, &cfg, &s).unwrap();
        let part = run_pipeline(&topo, &cfg_q, &s).unwrap();
        // Matches the chunk-granular query reference exactly.
        assert_eq!(part.image.diff_pixels(&reference_image(&cfg_q)), 0);
        // Different from the full rendering, and cheaper.
        assert!(part.image.diff_pixels(&full.image) > 0);
        let full_disk: u64 = full
            .report
            .copies
            .iter()
            .map(|c| c.counters.disk_bytes)
            .sum();
        let part_disk: u64 = part
            .report
            .copies
            .iter()
            .map(|c| c.counters.disk_bytes)
            .sum();
        assert!(
            part_disk < full_disk / 2,
            "query read {part_disk} vs full {full_disk}"
        );
        assert!(part.elapsed < full.elapsed);
    }

    #[test]
    fn empty_range_query_renders_background() {
        let (topo, cfg) = small_setup(2, 64);
        let mut c = clone_config(&cfg);
        c.query = Some(volume::CellRange {
            lo: (5, 5, 5),
            hi: (5, 9, 9),
        });
        let cfg_q: SharedConfig = Arc::new(c);
        let s = spec(&topo, &cfg_q, Grouping::RERaM, Algorithm::ZBuffer);
        let r = run_pipeline(&topo, &cfg_q, &s).unwrap();
        assert_eq!(r.image.coverage(isosurf::BACKGROUND), 0);
    }

    #[test]
    fn image_partitioned_matches_reference_both_algorithms() {
        let (topo, cfg) = small_setup(3, 96);
        for alg in [Algorithm::ZBuffer, Algorithm::ActivePixel] {
            let s = spec(
                &topo,
                &cfg,
                Grouping::ImagePartitioned {
                    raster: Placement::one_per_host(&cfg.storage_hosts),
                },
                alg,
            );
            let r = run_pipeline(&topo, &cfg, &s).unwrap();
            assert_eq!(
                r.image.diff_pixels(&reference_image(&cfg)),
                0,
                "partitioned {alg:?}"
            );
        }
    }

    #[test]
    fn image_partitioned_zbuffer_ships_one_image_total() {
        // The point of partitioning for the z-buffer algorithm: merge
        // volume is one image's worth in total, instead of one per copy.
        let (topo, cfg) = small_setup(4, 128);
        let replicated = spec(
            &topo,
            &cfg,
            Grouping::RERaSplit {
                raster: Placement::one_per_host(&cfg.storage_hosts),
            },
            Algorithm::ZBuffer,
        );
        let partitioned = spec(
            &topo,
            &cfg,
            Grouping::ImagePartitioned {
                raster: Placement::one_per_host(&cfg.storage_hosts),
            },
            Algorithm::ZBuffer,
        );
        let rr = run_pipeline(&topo, &cfg, &replicated).unwrap();
        let rp = run_pipeline(&topo, &cfg, &partitioned).unwrap();
        let vol_replicated = rr.report.stream(rr.to_merge).total_bytes();
        let vol_partitioned = rp.report.stream(rp.to_merge).total_bytes();
        // 4 copies x full image vs 1 x full image.
        assert_eq!(vol_replicated, 4 * vol_partitioned);
        assert_eq!(rp.image.diff_pixels(&rr.image), 0);
    }

    #[test]
    fn tile_composite_matches_reference_both_algorithms() {
        let (topo, cfg) = small_setup(3, 96);
        for alg in [Algorithm::ZBuffer, Algorithm::ActivePixel] {
            let s = spec(
                &topo,
                &cfg,
                Grouping::TileComposite {
                    raster: Placement::one_per_host(&cfg.storage_hosts),
                    merge: Placement::one_per_host(&cfg.storage_hosts),
                },
                alg,
            );
            let r = run_pipeline(&topo, &cfg, &s).unwrap();
            assert_eq!(r.image.diff_pixels(&reference_image(&cfg)), 0, "{alg:?}");
            assert_eq!(r.filters.len(), 4, "RE, Ra, Mt, A");
        }
    }

    #[test]
    fn tile_composite_is_bitwise_equal_to_single_sink_merge() {
        // The tentpole invariant: distributing the merge over tile owners
        // must not change a single pixel relative to the serial sink.
        let (topo, cfg) = small_setup(3, 96);
        for alg in [Algorithm::ZBuffer, Algorithm::ActivePixel] {
            let serial = spec(
                &topo,
                &cfg,
                Grouping::RERaSplit {
                    raster: Placement::one_per_host(&cfg.storage_hosts),
                },
                alg,
            );
            let tiled = spec(
                &topo,
                &cfg,
                Grouping::TileComposite {
                    raster: Placement::one_per_host(&cfg.storage_hosts),
                    merge: Placement::one_per_host(&cfg.storage_hosts),
                },
                alg,
            );
            let rs = run_pipeline(&topo, &cfg, &serial).unwrap();
            let rt = run_pipeline(&topo, &cfg, &tiled).unwrap();
            assert_eq!(rt.image.diff_pixels(&rs.image), 0, "{alg:?}");
        }
    }

    #[test]
    fn tile_composite_handles_extreme_tile_sizes() {
        // One-row tiles (maximal splitting) and one giant tile (everything
        // lands on one merge set) are both correct.
        let (topo, cfg) = small_setup(2, 96);
        for tile_size in [1u32, 7, 96, 10_000] {
            let mut c = clone_config(&cfg);
            c.tile_size = tile_size;
            let c: SharedConfig = Arc::new(c);
            let s = spec(
                &topo,
                &c,
                Grouping::TileComposite {
                    raster: Placement::one_per_host(&c.storage_hosts),
                    merge: Placement::one_per_host(&c.storage_hosts),
                },
                Algorithm::ActivePixel,
            );
            let r = run_pipeline(&topo, &c, &s).unwrap();
            assert_eq!(
                r.image.diff_pixels(&reference_image(&c)),
                0,
                "tile_size={tile_size}"
            );
        }
    }

    #[test]
    fn tile_composite_multi_uow_resets_tile_accumulators() {
        // Leaked per-tile z-buffers would ghost earlier timesteps into
        // later images, exactly like the single-sink regression test.
        let (topo, cfg) = small_setup(2, 96);
        let s = spec(
            &topo,
            &cfg,
            Grouping::TileComposite {
                raster: Placement::one_per_host(&cfg.storage_hosts),
                merge: Placement::one_per_host(&cfg.storage_hosts),
            },
            Algorithm::ZBuffer,
        );
        let multi = run_pipeline_uows(&topo, &cfg, &s, 2).unwrap();
        let mut c = clone_config(&cfg);
        c.timestep = 1;
        let reference = reference_image(&Arc::new(c));
        assert_eq!(multi.images[1].diff_pixels(&reference), 0);
    }

    #[test]
    fn multi_uow_run_matches_per_timestep_references() {
        let (topo, cfg) = small_setup(2, 96);
        let s = spec(
            &topo,
            &cfg,
            Grouping::RERaSplit {
                raster: Placement::one_per_host(&cfg.storage_hosts),
            },
            Algorithm::ActivePixel,
        );
        let multi = run_pipeline_uows(&topo, &cfg, &s, 3).unwrap();
        assert_eq!(multi.images.len(), 3);
        assert_eq!(multi.uow_elapsed.len(), 3);
        for (t, img) in multi.images.iter().enumerate() {
            let mut c = clone_config(&cfg);
            c.timestep = t as u32;
            let reference = reference_image(&Arc::new(c));
            assert_eq!(img.diff_pixels(&reference), 0, "uow {t}");
        }
        // Consecutive cycles should take comparable time (same pipeline,
        // evolving field).
        let times: Vec<f64> = multi.uow_elapsed.iter().map(|d| d.as_secs_f64()).collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 2.0, "per-UOW times wildly uneven: {times:?}");
    }

    #[test]
    fn multi_uow_zbuffer_resets_accumulators_between_cycles() {
        // If the raster or merge filters leaked z-buffer state across
        // UOWs, later images would contain ghosts of earlier timesteps.
        let (topo, cfg) = small_setup(2, 96);
        let s = spec(
            &topo,
            &cfg,
            Grouping::RERaSplit {
                raster: Placement::one_per_host(&cfg.storage_hosts),
            },
            Algorithm::ZBuffer,
        );
        let multi = run_pipeline_uows(&topo, &cfg, &s, 2).unwrap();
        let mut c = clone_config(&cfg);
        c.timestep = 1;
        let reference = reference_image(&Arc::new(c));
        assert_eq!(multi.images[1].diff_pixels(&reference), 0);
    }

    fn total_disk_bytes(r: &PipelineResult) -> u64 {
        r.report.copies.iter().map(|c| c.counters.disk_bytes).sum()
    }

    #[test]
    fn warm_chunk_cache_skips_disk_traffic() {
        let (topo, cfg) = small_setup(2, 96);
        let mut c = clone_config(&cfg);
        c.cache_capacity = 1 << 30;
        let c: SharedConfig = Arc::new(c);
        let s = spec(&topo, &c, Grouping::RERaM, Algorithm::ActivePixel);
        let cold = run_pipeline(&topo, &c, &s).unwrap();
        let warm = run_pipeline(&topo, &c, &s).unwrap();
        assert_eq!(warm.image.diff_pixels(&cold.image), 0);
        assert_eq!(cold.image.diff_pixels(&reference_image(&c)), 0);
        assert!(total_disk_bytes(&cold) > 0, "cold run reads from disk");
        assert_eq!(
            total_disk_bytes(&warm),
            0,
            "warm run serves every chunk from the cache"
        );
        assert!(warm.elapsed < cold.elapsed, "cache hits skip disk time");
        let stats = c.chunk_cache().expect("cache wired").stats();
        assert_eq!(stats.hits + stats.misses, stats.lookups());
        assert!(stats.hits >= 8, "second pass hits every chunk");
        assert!(stats.resident_bytes <= stats.capacity_bytes);
    }

    #[test]
    fn prefetched_run_matches_reference_and_disk_tally() {
        let (topo, cfg) = small_setup(2, 96);
        let s = spec(&topo, &cfg, Grouping::RERaM, Algorithm::ActivePixel);
        let plain = run_pipeline(&topo, &cfg, &s).unwrap();
        let mut c = clone_config(&cfg);
        c.prefetch_depth = 4;
        let c: SharedConfig = Arc::new(c);
        let pre = run_pipeline(&topo, &c, &s).unwrap();
        assert_eq!(pre.image.diff_pixels(&plain.image), 0);
        assert_eq!(
            total_disk_bytes(&pre),
            total_disk_bytes(&plain),
            "read-ahead moves the same bytes, just earlier"
        );
        assert!(
            pre.elapsed <= plain.elapsed,
            "overlapping retrieval with compute must not slow the run: \
             {:?} vs {:?}",
            pre.elapsed,
            plain.elapsed
        );
    }

    #[test]
    fn budgeted_run_spills_and_stays_bit_identical() {
        let (topo, cfg) = small_setup(2, 96);
        let s = spec(
            &topo,
            &cfg,
            Grouping::FourStage {
                extract: Placement::on_host(cfg.storage_hosts[1], 1),
                raster: Placement::on_host(cfg.storage_hosts[0], 1),
            },
            Algorithm::ActivePixel,
        );
        let free = run_pipeline(&topo, &cfg, &s).unwrap();
        assert_eq!(free.report.ooc.spills, 0, "unbudgeted runs never spill");
        let mut c = clone_config(&cfg);
        c.memory_budget_bytes = c.dataset.chunk_bytes(volume::ChunkId(0));
        c.validate().expect("one-chunk budget validates");
        let c: SharedConfig = Arc::new(c);
        let tight = run_pipeline(&topo, &c, &s).unwrap();
        assert_eq!(tight.image.diff_pixels(&free.image), 0);
        let ooc = tight.report.ooc;
        assert!(ooc.spills > 0, "a one-chunk budget must force spills");
        assert_eq!(ooc.spills, ooc.faults, "every spilled buffer re-faults");
        assert_eq!(ooc.spill_bytes, ooc.fault_bytes);
        assert_eq!(
            ooc.resident_bytes(),
            0,
            "ledger drains when the run completes: granted {} released {}",
            ooc.granted_bytes,
            ooc.released_bytes
        );
        assert_eq!(ooc.memory_budget_bytes, c.memory_budget_bytes);
    }

    #[test]
    fn timestep_sweep_produces_distinct_images() {
        let (topo, cfg) = small_setup(2, 96);
        let s = spec(&topo, &cfg, Grouping::RERaM, Algorithm::ActivePixel);
        let results = run_timesteps(&topo, &cfg, &s, 0..3).unwrap();
        assert_eq!(results.len(), 3);
        assert!(avg_elapsed_secs(&results) > 0.0);
        assert!(
            results[0].image.diff_pixels(&results[2].image) > 0,
            "fields evolve over time"
        );
    }
}
