//! Composable stage logic shared between the isolated filters (R, E, Ra,
//! M) and the fused groupings (RE, ERa, RERa). Each stage charges its
//! compute cost to the host CPU via the filter context; fusing stages is
//! then literally function composition, which is how the paper's grouped
//! configurations behave.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use datacutter::FilterCtx;
use hetsim::{Env, Semaphore};
use isosurf::{
    merge_batch, raster_triangle, ActivePixelBuffer, Image, Triangle, WinningPixel, ZBuffer,
    BACKGROUND,
};
use volume::{CacheKey, ChunkCache, ChunkId, RectGrid};

use crate::config::{Algorithm, SharedConfig};
use crate::payload::{ChunkPayload, RaOut, TriBatch};
use crate::pool::BufferPool;

/// One chunk the read stage will retrieve, in retrieval order.
/// `reset_seek` marks reads that must pay the full positioning overhead
/// regardless of what came before: the first chunk of a file, or a chunk
/// following a query-skipped neighbour.
#[derive(Clone, Copy)]
struct PlanEntry {
    chunk: ChunkId,
    disk: u32,
    bytes: u64,
    reset_seek: bool,
}

/// One completed read-ahead fetch: the bytes it charged to the disk
/// model and (when a cache is wired) the decoded grid.
type Fetched = (u64, Option<Arc<RectGrid>>);

/// Handshake between the read loop and its read-ahead helper process:
/// `slots` bounds how far ahead the helper runs (`prefetch_depth`
/// chunks), `ready` signals completed fetches, and `queue` carries what
/// each fetch charged and (when a cache is wired) the decoded grid.
struct Prefetch {
    slots: Semaphore,
    ready: Semaphore,
    queue: Arc<Mutex<VecDeque<Fetched>>>,
}

/// Reads this storage node's declustered chunks off its local disks.
pub(crate) struct ReadStage {
    pub cfg: SharedConfig,
    pub node_index: usize,
}

impl ReadStage {
    /// The node's retrieval plan: selected chunks in file/Hilbert order
    /// with their disks, sizes, and seek-reset points.
    fn plan(&self) -> Vec<PlanEntry> {
        let selected = self.cfg.selected_chunks();
        let mut out = Vec::new();
        for (file, disk) in self.cfg.files_for_node(self.node_index) {
            let mut reset_seek = true;
            for &chunk in self.cfg.dataset.chunks_in_file(file) {
                if !selected.contains(&chunk) {
                    // Outside the range query: skipped chunks break the
                    // sequential scan, so the next read re-seeks.
                    reset_seek = true;
                    continue;
                }
                out.push(PlanEntry {
                    chunk,
                    disk,
                    bytes: self.cfg.dataset.chunk_bytes(chunk),
                    reset_seek,
                });
                reset_seek = false;
            }
        }
        out
    }

    /// Spawn the read-ahead helper on the simulation clock, when the
    /// config asks for one and this copy runs under the sim executor.
    /// The helper walks the plan up to `prefetch_depth` chunks ahead of
    /// the main loop, charging the disk model (and filling the chunk
    /// cache) so retrieval overlaps the main loop's compute.
    fn spawn_prefetcher(
        &self,
        ctx: &FilterCtx,
        timestep: u32,
        plan: &[PlanEntry],
        cache: Option<Arc<ChunkCache>>,
    ) -> Option<Prefetch> {
        if self.cfg.prefetch_depth == 0 || plan.is_empty() {
            return None;
        }
        let env = ctx.sim_env()?;
        let disks = ctx.topology().host(ctx.host()).disks.clone();
        if disks.is_empty() {
            return None;
        }
        let pf = Prefetch {
            slots: Semaphore::new(self.cfg.prefetch_depth as u64),
            ready: Semaphore::new(0),
            queue: Arc::new(Mutex::new(VecDeque::new())),
        };
        let (slots, ready, queue) = (pf.slots.clone(), pf.ready.clone(), pf.queue.clone());
        let cfg = self.cfg.clone();
        let plan = plan.to_vec();
        env.spawn(format!("prefetch:{}", self.node_index), move |env: Env| {
            let mut head_on_track = false;
            for e in &plan {
                slots.acquire(&env);
                let key = CacheKey {
                    species: cfg.species,
                    timestep,
                    chunk: e.chunk,
                };
                let record = match cache.as_ref().and_then(|c| c.get(key)) {
                    Some(grid) => {
                        // Cache hit: no disk op, so the head has not
                        // advanced and the next miss pays a full seek.
                        head_on_track = false;
                        (0, Some(grid))
                    }
                    None => {
                        let d = &disks[e.disk as usize % disks.len()];
                        if head_on_track && !e.reset_seek {
                            d.read_seq(&env, e.bytes);
                        } else {
                            d.read(&env, e.bytes);
                        }
                        head_on_track = true;
                        let got = cache.as_ref().map(|c| {
                            let grid =
                                Arc::new(cfg.dataset.read_chunk(cfg.species, timestep, e.chunk));
                            c.insert(key, grid.clone());
                            grid
                        });
                        (e.bytes, got)
                    }
                };
                queue.lock().expect("prefetch queue").push_back(record);
                ready.release(&env);
            }
        });
        Some(pf)
    }

    /// Stream every local chunk through `sink`, charging disk + CPU.
    /// Chunks within a file are read sequentially (Hilbert order), so only
    /// the first read of each file pays the full positioning overhead.
    /// Unit of work `k` renders timestep `cfg.timestep + k` (wrapped to
    /// the stored range), so a multi-UOW run browses consecutive
    /// timesteps like the paper's experiments.
    ///
    /// A configured [`ChunkCache`](crate::config::AppConfig::chunk_cache)
    /// is consulted per chunk: hits skip the disk entirely (the next miss
    /// re-seeks), misses read and populate. With `prefetch_depth > 0`
    /// under the sim executor, retrieval is delegated to a read-ahead
    /// helper process and this loop only tallies the bytes it charged.
    pub fn run(&self, ctx: &mut FilterCtx, mut sink: impl FnMut(&mut FilterCtx, ChunkPayload)) {
        let timestep = (self.cfg.timestep + ctx.uow()) % volume::TIMESTEPS;
        let plan = self.plan();
        let cache = self.cfg.chunk_cache().cloned();
        let prefetch = self.spawn_prefetcher(ctx, timestep, &plan, cache.clone());
        let mut head_on_track = false;
        for e in &plan {
            let grid = match &prefetch {
                Some(pf) => {
                    {
                        let env = ctx.sim_env().expect("prefetcher only spawns under sim");
                        pf.ready.acquire(env);
                    }
                    let (charged, got) = pf
                        .queue
                        .lock()
                        .expect("prefetch queue")
                        .pop_front()
                        .expect("one record per planned chunk");
                    {
                        let env = ctx.sim_env().expect("prefetcher only spawns under sim");
                        pf.slots.release(env);
                    }
                    if charged > 0 {
                        ctx.note_disk_bytes(charged);
                    }
                    ctx.compute(self.cfg.cost.read_cost(e.bytes));
                    match got {
                        Some(grid) => (*grid).clone(),
                        None => self
                            .cfg
                            .dataset
                            .read_chunk(self.cfg.species, timestep, e.chunk),
                    }
                }
                None => {
                    let key = CacheKey {
                        species: self.cfg.species,
                        timestep,
                        chunk: e.chunk,
                    };
                    match cache.as_ref().and_then(|c| c.get(key)) {
                        Some(grid) => {
                            // Cache hit: no disk traffic; the head did not
                            // advance, so the next miss pays a full seek.
                            head_on_track = false;
                            ctx.compute(self.cfg.cost.read_cost(e.bytes));
                            (*grid).clone()
                        }
                        None => {
                            ctx.disk_read(e.disk as usize, e.bytes, head_on_track && !e.reset_seek);
                            head_on_track = true;
                            ctx.compute(self.cfg.cost.read_cost(e.bytes));
                            let grid =
                                self.cfg
                                    .dataset
                                    .read_chunk(self.cfg.species, timestep, e.chunk);
                            if let Some(c) = &cache {
                                c.insert(key, Arc::new(grid.clone()));
                            }
                            grid
                        }
                    }
                }
            };
            let info = self.cfg.dataset.chunk_info(e.chunk);
            sink(
                ctx,
                ChunkPayload {
                    origin: info.cell_origin,
                    grid,
                },
            );
        }
    }
}

/// Marching-cubes extraction with fixed-size triangle batching. Outgoing
/// batches draw from a per-copy [`BufferPool`], so after the first unit
/// of work the batching loop allocates nothing: consumers dropping a
/// [`TriBatch`] recycle its buffer back here.
pub(crate) struct ExtractStage {
    pub cfg: SharedConfig,
    pending: Vec<Triangle>,
    pool: BufferPool<Triangle>,
}

impl ExtractStage {
    pub fn new(cfg: SharedConfig) -> Self {
        ExtractStage {
            pending: Vec::new(),
            pool: BufferPool::new(),
            cfg,
        }
    }

    /// Drop any state from a previous unit of work (call from `init`).
    pub fn reset(&mut self) {
        self.pending.clear();
    }

    /// Extract one chunk, emitting full batches through `sink`.
    pub fn feed(
        &mut self,
        ctx: &mut FilterCtx,
        chunk: ChunkPayload,
        mut sink: impl FnMut(&mut FilterCtx, TriBatch),
    ) {
        let before = self.pending.len();
        let stats = isosurf::extract(&chunk.grid, chunk.origin, self.cfg.iso, &mut self.pending);
        let produced = self.pending.len() - before;
        ctx.compute(self.cfg.cost.extract_cost(stats.cells, produced as u64));
        while self.pending.len() >= self.cfg.tri_batch {
            let mut batch = self.pool.take(self.cfg.tri_batch);
            batch
                .buf_mut()
                .extend(self.pending.drain(..self.cfg.tri_batch));
            sink(ctx, TriBatch { tris: batch });
        }
    }

    /// Emit any partial batch (call at end-of-work).
    pub fn flush(&mut self, ctx: &mut FilterCtx, mut sink: impl FnMut(&mut FilterCtx, TriBatch)) {
        if !self.pending.is_empty() {
            let mut batch = self.pool.take(self.pending.len());
            batch.buf_mut().append(&mut self.pending);
            sink(ctx, TriBatch { tris: batch });
        }
    }
}

/// Hidden-surface removal: dense z-buffer or sparse active-pixel. An
/// optional scissor restricts the stage to a horizontal band of the image
/// (image-partitioned rendering, the paper's §6 alternative to
/// image-replication).
pub(crate) enum RasterStage {
    Zb {
        zb: ZBuffer,
        scissor: Option<(u32, u32)>,
        /// Band buffers for end-of-work shipping, recycled by the merge.
        dpool: BufferPool<f32>,
        cpool: BufferPool<[u8; 3]>,
    },
    Ap {
        ap: ActivePixelBuffer,
        scissor: Option<(u32, u32)>,
        /// WPA batch buffers: recycled ones are re-supplied to `ap` before
        /// each feed, so steady-state flushes allocate nothing.
        pool: BufferPool<WinningPixel>,
    },
}

impl RasterStage {
    pub fn new(alg: Algorithm, cfg: &SharedConfig) -> Self {
        Self::with_scissor(alg, cfg, None)
    }

    /// A stage that only owns image rows `[scissor.0, scissor.1)`.
    pub fn with_scissor(alg: Algorithm, cfg: &SharedConfig, scissor: Option<(u32, u32)>) -> Self {
        match alg {
            Algorithm::ZBuffer => RasterStage::Zb {
                zb: ZBuffer::new(cfg.camera.width, cfg.camera.height),
                scissor,
                dpool: BufferPool::new(),
                cpool: BufferPool::new(),
            },
            Algorithm::ActivePixel => RasterStage::Ap {
                ap: ActivePixelBuffer::new(cfg.camera.width, cfg.wpa_capacity),
                scissor,
                pool: BufferPool::new(),
            },
        }
    }

    /// Rasterize one triangle batch. Under the active-pixel algorithm,
    /// filled WPA batches flow out through `sink` immediately; under the
    /// z-buffer algorithm nothing is emitted until [`finish`](Self::finish).
    pub fn feed(
        &mut self,
        cfg: &SharedConfig,
        ctx: &mut FilterCtx,
        batch: TriBatch,
        mut sink: impl FnMut(&mut FilterCtx, RaOut),
    ) {
        let proj = cfg.camera.projector();
        let (w, h) = (cfg.camera.width, cfg.camera.height);
        let mut pixels = 0u64;
        match self {
            RasterStage::Zb { zb, scissor, .. } => {
                let band = scissor.unwrap_or((0, h));
                for t in batch.tris.iter() {
                    if let Some(p) =
                        raster_triangle(&proj, w, h, &cfg.material, t, |x, y, d, rgb| {
                            if y >= band.0 && y < band.1 {
                                zb.plot(x, y, d, rgb);
                            }
                        })
                    {
                        pixels += p;
                    }
                }
                ctx.compute(cfg.cost.raster_cost(batch.tris.len() as u64, pixels));
            }
            RasterStage::Ap { ap, scissor, pool } => {
                // Re-arm the active-pixel buffer with every batch buffer the
                // merge has recycled since the last feed: flushes then reuse
                // them instead of allocating.
                while let Some(v) = pool.try_take_raw() {
                    ap.supply(v);
                }
                let band = scissor.unwrap_or((0, h));
                let mut flushed: Vec<Vec<WinningPixel>> = Vec::new();
                {
                    let mut on_flush = |b: Vec<WinningPixel>| flushed.push(b);
                    for t in batch.tris.iter() {
                        if let Some(p) =
                            raster_triangle(&proj, w, h, &cfg.material, t, |x, y, d, rgb| {
                                if y >= band.0 && y < band.1 {
                                    ap.plot(x, y, d, rgb, &mut on_flush);
                                }
                            })
                        {
                            pixels += p;
                        }
                    }
                }
                ctx.compute(cfg.cost.raster_cost(batch.tris.len() as u64, pixels));
                for b in flushed {
                    sink(ctx, RaOut::Wpa(pool.adopt(b)));
                }
            }
        }
    }

    /// End-of-work: the z-buffer variant now ships its whole buffer in
    /// fixed-size bands (the synchronization point the paper describes);
    /// the active-pixel variant flushes its partial WPA.
    pub fn finish(
        &mut self,
        cfg: &SharedConfig,
        ctx: &mut FilterCtx,
        mut sink: impl FnMut(&mut FilterCtx, RaOut),
    ) {
        match self {
            RasterStage::Zb {
                zb,
                scissor,
                dpool,
                cpool,
            } => {
                // Only this stage's owned rows travel to the merge — the
                // whole image under replication, just the band under
                // partitioning. Band buffers are pooled: the merge dropping
                // a band returns both vectors here for the next timestep.
                let (owned_lo, owned_hi) = scissor.unwrap_or((0, zb.height));
                let rows = cfg.band_rows();
                let w = zb.width;
                let mut y0 = owned_lo;
                while y0 < owned_hi {
                    let n = rows.min(owned_hi - y0);
                    let a = (y0 * w) as usize;
                    let b = ((y0 + n) * w) as usize;
                    let mut depth = dpool.take(b - a);
                    depth.buf_mut().extend_from_slice(&zb.depth[a..b]);
                    let mut color = cpool.take(b - a);
                    color.buf_mut().extend_from_slice(&zb.color[a..b]);
                    sink(
                        ctx,
                        RaOut::Band {
                            y0,
                            width: w,
                            depth,
                            color,
                        },
                    );
                    y0 += n;
                }
            }
            RasterStage::Ap { ap, pool, .. } => {
                let mut flushed: Vec<Vec<WinningPixel>> = Vec::new();
                ap.force_flush(&mut |b| flushed.push(b));
                for b in flushed {
                    sink(ctx, RaOut::Wpa(pool.adopt(b)));
                }
            }
        }
    }
}

/// Extraction with screen-space routing: triangles are batched per image
/// band and handed to `sink(ctx, band_index, batch)`, for the
/// image-partitioned configuration where each raster copy set owns a band.
pub(crate) struct RoutedExtractStage {
    pub cfg: SharedConfig,
    proj: isosurf::Projector,
    bands: Vec<(u32, u32)>,
    pending: Vec<Vec<Triangle>>,
    scratch: Vec<Triangle>,
    pool: BufferPool<Triangle>,
}

impl RoutedExtractStage {
    pub fn new(cfg: SharedConfig, bands: Vec<(u32, u32)>) -> Self {
        let proj = cfg.camera.projector();
        let pending = bands.iter().map(|_| Vec::new()).collect();
        RoutedExtractStage {
            cfg,
            proj,
            bands,
            pending,
            scratch: Vec::new(),
            pool: BufferPool::new(),
        }
    }

    /// Drop state from a previous unit of work.
    pub fn reset(&mut self) {
        for p in &mut self.pending {
            p.clear();
        }
        self.scratch.clear();
    }

    /// Extract one chunk and route its triangles to the bands their screen
    /// projection overlaps (a boundary triangle goes to every band it
    /// touches; each receiving raster stage scissors to its own rows).
    pub fn feed(
        &mut self,
        ctx: &mut FilterCtx,
        chunk: ChunkPayload,
        mut sink: impl FnMut(&mut FilterCtx, usize, TriBatch),
    ) {
        self.scratch.clear();
        let stats = isosurf::extract(&chunk.grid, chunk.origin, self.cfg.iso, &mut self.scratch);
        ctx.compute(
            self.cfg
                .cost
                .extract_cost(stats.cells, self.scratch.len() as u64),
        );
        let h = self.cfg.camera.height as f32;
        for t in &self.scratch {
            // Screen y-range of the triangle; behind-camera triangles are
            // dropped (the raster filter would reject them anyway).
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            let mut visible = true;
            for v in &t.v {
                match self.proj.project(*v) {
                    Some(s) => {
                        lo = lo.min(s.y);
                        hi = hi.max(s.y);
                    }
                    None => {
                        visible = false;
                        break;
                    }
                }
            }
            if !visible || hi < 0.0 || lo >= h {
                continue;
            }
            for (i, &(b0, b1)) in self.bands.iter().enumerate() {
                if lo < b1 as f32 && hi >= b0 as f32 {
                    self.pending[i].push(*t);
                }
            }
        }
        for i in 0..self.bands.len() {
            while self.pending[i].len() >= self.cfg.tri_batch {
                let mut batch = self.pool.take(self.cfg.tri_batch);
                batch
                    .buf_mut()
                    .extend(self.pending[i].drain(..self.cfg.tri_batch));
                sink(ctx, i, TriBatch { tris: batch });
            }
        }
    }

    /// Emit all partial batches (call at end-of-work).
    pub fn flush(
        &mut self,
        ctx: &mut FilterCtx,
        mut sink: impl FnMut(&mut FilterCtx, usize, TriBatch),
    ) {
        for i in 0..self.bands.len() {
            if !self.pending[i].is_empty() {
                let mut batch = self.pool.take(self.pending[i].len());
                batch.buf_mut().append(&mut self.pending[i]);
                sink(ctx, i, TriBatch { tris: batch });
            }
        }
    }
}

/// Split `height` rows into `n` equal horizontal bands.
pub(crate) fn split_bands(height: u32, n: usize) -> Vec<(u32, u32)> {
    assert!(n >= 1 && height as usize >= n);
    let n32 = n as u32;
    (0..n32)
        .map(|i| {
            let base = height / n32;
            let rem = height % n32;
            let extent = base + if i < rem { 1 } else { 0 };
            let origin = i * base + i.min(rem);
            (origin, origin + extent)
        })
        .collect()
}

/// One merge copy's accumulator in the tile-composite group: a small
/// z-buffer **per owned tile**, materialized lazily when the first
/// fragment for that tile arrives. The producer splits fragments at tile
/// boundaries, so each incoming [`RaOut`] lies in exactly one tile and the
/// fold is the same strict-`<` depth test the single-sink merge applies —
/// compositing per tile and stitching is bit-identical to folding
/// everything into one whole-image buffer.
pub(crate) struct TileMergeStage {
    pub cfg: SharedConfig,
    tile_rows: u32,
    tiles: Vec<Option<ZBuffer>>,
    /// Depth entries folded (metrics).
    pub entries: u64,
}

impl TileMergeStage {
    pub fn new(cfg: SharedConfig) -> Self {
        let tile_rows = cfg.tile_rows();
        let n = cfg.n_tiles() as usize;
        TileMergeStage {
            cfg,
            tile_rows,
            tiles: (0..n).map(|_| None).collect(),
            entries: 0,
        }
    }

    fn tile_mut(&mut self, tile: u32) -> (&mut ZBuffer, u32) {
        let (lo, hi) = crate::tiles::tile_range(tile, self.tile_rows, self.cfg.camera.height);
        let w = self.cfg.camera.width;
        let zb = self.tiles[tile as usize].get_or_insert_with(|| ZBuffer::new(w, hi - lo));
        (zb, lo)
    }

    /// Fold one single-tile fragment.
    pub fn feed(&mut self, ctx: &mut FilterCtx, out: RaOut) {
        let entries = out.merge_entries();
        if entries == 0 {
            return;
        }
        match out {
            RaOut::Band {
                y0, depth, color, ..
            } => {
                let (zb, lo) = self.tile_mut(crate::tiles::tile_of_row(y0, self.tile_rows));
                isosurf::merge_rows(zb, y0 - lo, &depth, &color);
            }
            RaOut::Wpa(batch) => {
                let tile = crate::tiles::tile_of_row(batch[0].y as u32, self.tile_rows);
                let (zb, lo) = self.tile_mut(tile);
                isosurf::merge_batch_offset(zb, lo, &batch);
            }
        }
        self.entries += entries;
        ctx.compute(self.cfg.cost.merge_cost(entries));
    }

    /// Ship every composited tile downstream as a dense band, in ascending
    /// tile order (call after the input stream hits end-of-work). The tile
    /// buffers are moved, not copied.
    pub fn finish(&mut self, ctx: &mut FilterCtx, mut sink: impl FnMut(&mut FilterCtx, RaOut)) {
        for t in 0..self.tiles.len() {
            if let Some(zb) = self.tiles[t].take() {
                let (lo, _) =
                    crate::tiles::tile_range(t as u32, self.tile_rows, self.cfg.camera.height);
                sink(
                    ctx,
                    RaOut::Band {
                        y0: lo,
                        width: zb.width,
                        depth: zb.depth.into(),
                        color: zb.color.into(),
                    },
                );
            }
        }
    }
}

/// The merge filter's accumulator: folds partial results into the final
/// image. Handles both algorithms' payloads.
pub(crate) struct MergeStage {
    pub cfg: SharedConfig,
    zb: ZBuffer,
    /// Depth entries folded (metrics).
    pub entries: u64,
}

impl MergeStage {
    pub fn new(cfg: SharedConfig) -> Self {
        let zb = ZBuffer::new(cfg.camera.width, cfg.camera.height);
        MergeStage {
            cfg,
            zb,
            entries: 0,
        }
    }

    /// Fold one partial result.
    pub fn feed(&mut self, ctx: &mut FilterCtx, out: RaOut) {
        let entries = out.merge_entries();
        match out {
            RaOut::Band {
                y0,
                width,
                depth,
                color,
            } => {
                debug_assert_eq!(width, self.zb.width);
                isosurf::merge_rows(&mut self.zb, y0, &depth, &color);
            }
            RaOut::Wpa(batch) => merge_batch(&mut self.zb, &batch),
        }
        self.entries += entries;
        ctx.compute(self.cfg.cost.merge_cost(entries));
    }

    /// Extract the final image.
    pub fn image(&self) -> Image {
        self.zb.to_image(BACKGROUND)
    }
}
