//! Stream payload types exchanged between the application filters, with
//! their wire sizes — and their [`SpillCodec`] encodings, so a
//! memory-budgeted run can spill any queued payload to the run's
//! temp-file ring and re-fault it bit-identically at read time.

use datacutter::SpillCodec;
use isosurf::{
    Triangle, WinningPixel, TRIANGLE_WIRE_BYTES, WPA_ENTRY_WIRE_BYTES, ZBUF_ENTRY_WIRE_BYTES,
};
use volume::{Dims, RectGrid};

use crate::pool::PoolVec;

/// R → E payload: one sub-volume of voxel data.
///
/// `Clone` (here and on the other payloads) is what lets the delivery
/// layer retain replicas for lossless recovery — see
/// [`BufferSlab::make_replicable`](datacutter::BufferSlab).
#[derive(Clone)]
pub struct ChunkPayload {
    /// Global cell origin of the chunk (so extracted geometry lands in
    /// world coordinates).
    pub origin: (u32, u32, u32),
    /// Point data (cells + 1 layer of points).
    pub grid: RectGrid,
}

impl ChunkPayload {
    /// Bytes this chunk occupies on the wire (header + f32 payload).
    pub fn wire_bytes(&self) -> u64 {
        12 + self.grid.dims.byte_size()
    }
}

/// An empty chunk (0-point grid) — the hollow state left behind when the
/// payload is `mem::take`n out of a recycled buffer box.
impl Default for ChunkPayload {
    fn default() -> Self {
        ChunkPayload {
            origin: (0, 0, 0),
            grid: RectGrid {
                dims: volume::Dims::new(0, 0, 0),
                data: Vec::new(),
            },
        }
    }
}

/// E → Ra payload: a batch of extracted triangles. The buffer is pooled:
/// dropping the batch (after rasterization) recycles it to the extract
/// stage that produced it.
#[derive(Default, Clone)]
pub struct TriBatch {
    /// The triangles.
    pub tris: PoolVec<Triangle>,
}

impl TriBatch {
    /// Wire size of the batch.
    pub fn wire_bytes(&self) -> u64 {
        self.tris.len() as u64 * TRIANGLE_WIRE_BYTES
    }
}

/// Ra → M payload: partial rendering results under either algorithm.
#[derive(Clone)]
pub enum RaOut {
    /// A horizontal band of a dense z-buffer (z-buffer algorithm; sent
    /// only after end-of-work).
    Band {
        /// First row of the band.
        y0: u32,
        /// Band width (= image width).
        width: u32,
        /// Per-pixel depth, row-major within the band.
        depth: PoolVec<f32>,
        /// Per-pixel color.
        color: PoolVec<[u8; 3]>,
    },
    /// A batch of winning pixels (active-pixel algorithm; streamed
    /// throughout processing).
    Wpa(PoolVec<WinningPixel>),
}

/// An empty winning-pixel batch — the hollow state left behind when the
/// payload is `mem::take`n out of a recycled buffer box.
impl Default for RaOut {
    fn default() -> Self {
        RaOut::Wpa(PoolVec::default())
    }
}

impl RaOut {
    /// Wire size of this message.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            RaOut::Band { depth, .. } => depth.len() as u64 * ZBUF_ENTRY_WIRE_BYTES,
            RaOut::Wpa(v) => v.len() as u64 * WPA_ENTRY_WIRE_BYTES,
        }
    }

    /// Number of depth entries the merge filter will fold.
    pub fn merge_entries(&self) -> u64 {
        match self {
            RaOut::Band { depth, .. } => depth.len() as u64,
            RaOut::Wpa(v) => v.len() as u64,
        }
    }
}

// ---------------------------------------------------------------------------
// Spill encodings. Plain little-endian layouts with a leading field count
// where the length is not implied; `f32` bits travel via `to_le_bytes`, so
// a spill → fault round trip is bit-exact. Decoded `PoolVec`s are homeless
// (they free on drop instead of recycling) — a faulted-in buffer already
// paid a disk round trip, so the extra allocation is noise.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Cursor-style reader over a spill slice; every `take_*` returns `None`
/// on underrun so corrupt ring data surfaces as a decode failure, not a
/// panic.
struct Rd<'a>(&'a [u8]);

impl Rd<'_> {
    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let (head, rest) = self.0.split_at_checked(N)?;
        self.0 = rest;
        head.try_into().ok()
    }

    fn u32(&mut self) -> Option<u32> {
        self.take::<4>().map(u32::from_le_bytes)
    }

    fn f32(&mut self) -> Option<f32> {
        self.take::<4>().map(f32::from_le_bytes)
    }

    fn done(&self) -> bool {
        self.0.is_empty()
    }
}

impl SpillCodec for ChunkPayload {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.origin.0);
        put_u32(out, self.origin.1);
        put_u32(out, self.origin.2);
        put_u32(out, self.grid.dims.nx);
        put_u32(out, self.grid.dims.ny);
        put_u32(out, self.grid.dims.nz);
        out.reserve(self.grid.data.len() * 4);
        for &v in &self.grid.data {
            put_f32(out, v);
        }
    }

    fn spill_decode(bytes: &[u8]) -> Option<Self> {
        let mut r = Rd(bytes);
        let origin = (r.u32()?, r.u32()?, r.u32()?);
        let dims = Dims {
            nx: r.u32()?,
            ny: r.u32()?,
            nz: r.u32()?,
        };
        let n = (dims.nx as usize)
            .checked_mul(dims.ny as usize)?
            .checked_mul(dims.nz as usize)?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.f32()?);
        }
        if !r.done() {
            return None;
        }
        Some(ChunkPayload {
            origin,
            grid: RectGrid { dims, data },
        })
    }
}

impl SpillCodec for TriBatch {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        out.reserve(self.tris.len() * TRIANGLE_WIRE_BYTES as usize);
        for t in self.tris.iter() {
            for v in t.v.iter().chain(std::iter::once(&t.normal)) {
                put_f32(out, v.x);
                put_f32(out, v.y);
                put_f32(out, v.z);
            }
        }
    }

    fn spill_decode(bytes: &[u8]) -> Option<Self> {
        if !bytes.len().is_multiple_of(TRIANGLE_WIRE_BYTES as usize) {
            return None;
        }
        let mut r = Rd(bytes);
        let mut tris = Vec::with_capacity(bytes.len() / TRIANGLE_WIRE_BYTES as usize);
        while !r.done() {
            let mut vs = [isosurf::Vec3::ZERO; 4];
            for v in &mut vs {
                *v = isosurf::vec3(r.f32()?, r.f32()?, r.f32()?);
            }
            tris.push(Triangle {
                v: [vs[0], vs[1], vs[2]],
                normal: vs[3],
            });
        }
        Some(TriBatch { tris: tris.into() })
    }
}

const RAOUT_BAND_TAG: u8 = 0;
const RAOUT_WPA_TAG: u8 = 1;

impl SpillCodec for RaOut {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        match self {
            RaOut::Band {
                y0,
                width,
                depth,
                color,
            } => {
                out.push(RAOUT_BAND_TAG);
                put_u32(out, *y0);
                put_u32(out, *width);
                put_u32(out, depth.len() as u32);
                out.reserve(depth.len() * 7);
                for &d in depth.iter() {
                    put_f32(out, d);
                }
                for rgb in color.iter() {
                    out.extend_from_slice(rgb);
                }
            }
            RaOut::Wpa(batch) => {
                out.push(RAOUT_WPA_TAG);
                put_u32(out, batch.len() as u32);
                out.reserve(batch.len() * 11);
                for p in batch.iter() {
                    out.extend_from_slice(&p.x.to_le_bytes());
                    out.extend_from_slice(&p.y.to_le_bytes());
                    put_f32(out, p.depth);
                    out.extend_from_slice(&p.rgb);
                }
            }
        }
    }

    fn spill_decode(bytes: &[u8]) -> Option<Self> {
        let (&tag, rest) = bytes.split_first()?;
        let mut r = Rd(rest);
        match tag {
            RAOUT_BAND_TAG => {
                let y0 = r.u32()?;
                let width = r.u32()?;
                let n = r.u32()? as usize;
                let mut depth = Vec::with_capacity(n);
                for _ in 0..n {
                    depth.push(r.f32()?);
                }
                let mut color = Vec::with_capacity(n);
                for _ in 0..n {
                    color.push(r.take::<3>()?);
                }
                if !r.done() {
                    return None;
                }
                Some(RaOut::Band {
                    y0,
                    width,
                    depth: depth.into(),
                    color: color.into(),
                })
            }
            RAOUT_WPA_TAG => {
                let n = r.u32()? as usize;
                let mut batch = Vec::with_capacity(n);
                for _ in 0..n {
                    batch.push(WinningPixel {
                        x: u16::from_le_bytes(r.take::<2>()?),
                        y: u16::from_le_bytes(r.take::<2>()?),
                        depth: r.f32()?,
                        rgb: r.take::<3>()?,
                    });
                }
                if !r.done() {
                    return None;
                }
                Some(RaOut::Wpa(batch.into()))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volume::Dims;

    #[test]
    fn chunk_wire_bytes() {
        let p = ChunkPayload {
            origin: (0, 0, 0),
            grid: RectGrid::filled(Dims::new(3, 3, 3), 0.0),
        };
        assert_eq!(p.wire_bytes(), 12 + 27 * 4);
    }

    #[test]
    fn tribatch_wire_bytes() {
        let b = TriBatch {
            tris: vec![].into(),
        };
        assert_eq!(b.wire_bytes(), 0);
    }

    #[test]
    fn raout_sizes() {
        let band = RaOut::Band {
            y0: 0,
            width: 4,
            depth: vec![0.0; 8].into(),
            color: vec![[0; 3]; 8].into(),
        };
        assert_eq!(band.wire_bytes(), 8 * ZBUF_ENTRY_WIRE_BYTES);
        assert_eq!(band.merge_entries(), 8);
        let wpa = RaOut::Wpa(
            vec![
                WinningPixel {
                    x: 0,
                    y: 0,
                    depth: 1.0,
                    rgb: [0, 0, 0]
                };
                5
            ]
            .into(),
        );
        assert_eq!(wpa.wire_bytes(), 5 * WPA_ENTRY_WIRE_BYTES);
        assert_eq!(wpa.merge_entries(), 5);
    }

    fn round_trip<T: SpillCodec>(v: &T) -> T {
        let mut bytes = Vec::new();
        v.spill_encode(&mut bytes);
        T::spill_decode(&bytes).expect("decode what we encoded")
    }

    #[test]
    fn chunk_spill_round_trip_is_bit_identical() {
        let p = ChunkPayload {
            origin: (3, 5, 7),
            grid: RectGrid {
                dims: Dims::new(2, 3, 4),
                data: (0..24).map(|i| (i as f32).sqrt()).collect(),
            },
        };
        let q = round_trip(&p);
        assert_eq!(q.origin, p.origin);
        assert_eq!(q.grid.dims, p.grid.dims);
        assert_eq!(
            q.grid.data.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
            p.grid.data.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tribatch_spill_round_trip() {
        let t = Triangle {
            v: [
                isosurf::vec3(0.0, 1.5, -2.0),
                isosurf::vec3(3.25, 4.0, 5.0),
                isosurf::vec3(-6.0, 7.0, 8.5),
            ],
            normal: isosurf::vec3(0.0, 0.0, 1.0),
        };
        let b = TriBatch {
            tris: vec![t, t].into(),
        };
        let c = round_trip(&b);
        assert_eq!(c.tris.len(), 2);
        assert_eq!(c.tris[1].v[2].z, 8.5);
        assert_eq!(c.tris[0].normal.z, 1.0);
    }

    #[test]
    fn raout_spill_round_trips_both_variants() {
        let band = RaOut::Band {
            y0: 9,
            width: 4,
            depth: vec![0.5, 1.0, f32::INFINITY, 2.0].into(),
            color: vec![[1, 2, 3], [4, 5, 6], [7, 8, 9], [0, 0, 0]].into(),
        };
        match round_trip(&band) {
            RaOut::Band {
                y0, depth, color, ..
            } => {
                assert_eq!(y0, 9);
                assert_eq!(depth[2], f32::INFINITY);
                assert_eq!(color[1], [4, 5, 6]);
            }
            RaOut::Wpa(_) => panic!("band decoded as wpa"),
        }
        let wpa = RaOut::Wpa(
            vec![WinningPixel {
                x: 11,
                y: 22,
                depth: 0.25,
                rgb: [9, 8, 7],
            }]
            .into(),
        );
        match round_trip(&wpa) {
            RaOut::Wpa(b) => {
                assert_eq!(
                    (b[0].x, b[0].y, b[0].depth, b[0].rgb),
                    (11, 22, 0.25, [9, 8, 7])
                );
            }
            RaOut::Band { .. } => panic!("wpa decoded as band"),
        }
    }

    #[test]
    fn corrupt_spill_bytes_fail_to_decode() {
        assert!(ChunkPayload::spill_decode(&[1, 2, 3]).is_none());
        assert!(TriBatch::spill_decode(&[0; 47]).is_none());
        assert!(RaOut::spill_decode(&[7]).is_none(), "unknown tag");
        assert!(RaOut::spill_decode(&[]).is_none());
    }
}
