//! Stream payload types exchanged between the application filters, with
//! their wire sizes.

use isosurf::{
    Triangle, WinningPixel, TRIANGLE_WIRE_BYTES, WPA_ENTRY_WIRE_BYTES, ZBUF_ENTRY_WIRE_BYTES,
};
use volume::RectGrid;

use crate::pool::PoolVec;

/// R → E payload: one sub-volume of voxel data.
///
/// `Clone` (here and on the other payloads) is what lets the delivery
/// layer retain replicas for lossless recovery — see
/// [`BufferSlab::make_replicable`](datacutter::BufferSlab).
#[derive(Clone)]
pub struct ChunkPayload {
    /// Global cell origin of the chunk (so extracted geometry lands in
    /// world coordinates).
    pub origin: (u32, u32, u32),
    /// Point data (cells + 1 layer of points).
    pub grid: RectGrid,
}

impl ChunkPayload {
    /// Bytes this chunk occupies on the wire (header + f32 payload).
    pub fn wire_bytes(&self) -> u64 {
        12 + self.grid.dims.byte_size()
    }
}

/// An empty chunk (0-point grid) — the hollow state left behind when the
/// payload is `mem::take`n out of a recycled buffer box.
impl Default for ChunkPayload {
    fn default() -> Self {
        ChunkPayload {
            origin: (0, 0, 0),
            grid: RectGrid {
                dims: volume::Dims::new(0, 0, 0),
                data: Vec::new(),
            },
        }
    }
}

/// E → Ra payload: a batch of extracted triangles. The buffer is pooled:
/// dropping the batch (after rasterization) recycles it to the extract
/// stage that produced it.
#[derive(Default, Clone)]
pub struct TriBatch {
    /// The triangles.
    pub tris: PoolVec<Triangle>,
}

impl TriBatch {
    /// Wire size of the batch.
    pub fn wire_bytes(&self) -> u64 {
        self.tris.len() as u64 * TRIANGLE_WIRE_BYTES
    }
}

/// Ra → M payload: partial rendering results under either algorithm.
#[derive(Clone)]
pub enum RaOut {
    /// A horizontal band of a dense z-buffer (z-buffer algorithm; sent
    /// only after end-of-work).
    Band {
        /// First row of the band.
        y0: u32,
        /// Band width (= image width).
        width: u32,
        /// Per-pixel depth, row-major within the band.
        depth: PoolVec<f32>,
        /// Per-pixel color.
        color: PoolVec<[u8; 3]>,
    },
    /// A batch of winning pixels (active-pixel algorithm; streamed
    /// throughout processing).
    Wpa(PoolVec<WinningPixel>),
}

/// An empty winning-pixel batch — the hollow state left behind when the
/// payload is `mem::take`n out of a recycled buffer box.
impl Default for RaOut {
    fn default() -> Self {
        RaOut::Wpa(PoolVec::default())
    }
}

impl RaOut {
    /// Wire size of this message.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            RaOut::Band { depth, .. } => depth.len() as u64 * ZBUF_ENTRY_WIRE_BYTES,
            RaOut::Wpa(v) => v.len() as u64 * WPA_ENTRY_WIRE_BYTES,
        }
    }

    /// Number of depth entries the merge filter will fold.
    pub fn merge_entries(&self) -> u64 {
        match self {
            RaOut::Band { depth, .. } => depth.len() as u64,
            RaOut::Wpa(v) => v.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volume::Dims;

    #[test]
    fn chunk_wire_bytes() {
        let p = ChunkPayload {
            origin: (0, 0, 0),
            grid: RectGrid::filled(Dims::new(3, 3, 3), 0.0),
        };
        assert_eq!(p.wire_bytes(), 12 + 27 * 4);
    }

    #[test]
    fn tribatch_wire_bytes() {
        let b = TriBatch {
            tris: vec![].into(),
        };
        assert_eq!(b.wire_bytes(), 0);
    }

    #[test]
    fn raout_sizes() {
        let band = RaOut::Band {
            y0: 0,
            width: 4,
            depth: vec![0.0; 8].into(),
            color: vec![[0; 3]; 8].into(),
        };
        assert_eq!(band.wire_bytes(), 8 * ZBUF_ENTRY_WIRE_BYTES);
        assert_eq!(band.merge_entries(), 8);
        let wpa = RaOut::Wpa(
            vec![
                WinningPixel {
                    x: 0,
                    y: 0,
                    depth: 1.0,
                    rgb: [0, 0, 0]
                };
                5
            ]
            .into(),
        );
        assert_eq!(wpa.wire_bytes(), 5 * WPA_ENTRY_WIRE_BYTES);
        assert_eq!(wpa.merge_entries(), 5);
    }
}
