//! The application filters (Figure 2(b) of the paper) and their fused
//! groupings (Figure 3): `R`, `E`, `Ra`, `M`, plus `RE`, `ERa`, and `RERa`.

use std::sync::Arc;

use datacutter::{Filter, FilterCtx, FilterError};
use isosurf::Image;
use parking_lot::Mutex;

use crate::config::{Algorithm, SharedConfig};
use crate::parts::{
    ExtractStage, MergeStage, RasterStage, ReadStage, RoutedExtractStage, TileMergeStage,
};
use crate::payload::{ChunkPayload, RaOut, TriBatch};
use crate::tiles::TileSplitter;

/// Shared slot the merge filter deposits final images into (one per unit
/// of work, in UOW order).
pub type ImageSlot = Arc<Mutex<Vec<Image>>>;

// The write helpers wrap payloads through the run's `BufferSlab` and the
// read sites unwrap through it, so in steady state the payload boxes cycle
// producer → consumer → producer with no heap traffic. Payloads go in via
// `make_spillable` (replicable + spill-encodable): runs under
// `Recovery::Lossless` can retain replicas, and runs under a memory
// budget can spill queued buffers to the temp-file ring. Without a fault
// plan or budget this costs nothing over `make`.

fn write_chunk(ctx: &mut FilterCtx, p: ChunkPayload) {
    let wire = p.wire_bytes();
    let buf = ctx.buffer_slab().make_spillable(p, wire);
    ctx.write(0, buf);
}

fn write_tris(ctx: &mut FilterCtx, b: TriBatch) {
    let wire = b.wire_bytes();
    let buf = ctx.buffer_slab().make_spillable(b, wire);
    ctx.write(0, buf);
}

fn write_raout(ctx: &mut FilterCtx, r: RaOut) {
    let wire = r.wire_bytes();
    let buf = ctx.buffer_slab().make_spillable(r, wire);
    ctx.write(0, buf);
}

/// **R** — reads this node's declustered chunks and streams voxel buffers.
pub struct ReadFilter {
    pub(crate) stage: ReadStage,
}

impl ReadFilter {
    /// `node_index` selects which storage node's files this copy serves.
    pub fn new(cfg: SharedConfig, node_index: usize) -> Self {
        ReadFilter {
            stage: ReadStage { cfg, node_index },
        }
    }
}

impl Filter for ReadFilter {
    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        self.stage.run(ctx, write_chunk);
        Ok(())
    }
}

/// **E** — marching-cubes extraction of voxel buffers into triangle
/// batches.
pub struct ExtractFilter {
    stage: ExtractStage,
}

impl ExtractFilter {
    /// Build from shared config.
    pub fn new(cfg: SharedConfig) -> Self {
        ExtractFilter {
            stage: ExtractStage::new(cfg),
        }
    }
}

impl Filter for ExtractFilter {
    fn init(&mut self, _ctx: &mut FilterCtx) {
        self.stage.reset();
    }

    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        // Under a crash plan the copy may be killed between reads; any
        // triangles batched across chunks would die with it even though
        // their (already-acknowledged) chunks will not be replayed. Flush
        // per chunk so a killed copy owes nothing for the chunks it
        // consumed and recovery stays lossless.
        let per_chunk = ctx.fail_stop_active();
        while let Some(b) = ctx.read(0) {
            let chunk = ctx
                .buffer_slab()
                .recycle_ctx::<ChunkPayload>(b, "E filter input");
            self.stage.feed(ctx, chunk, write_tris);
            if per_chunk {
                self.stage.flush(ctx, write_tris);
            }
        }
        self.stage.flush(ctx, write_tris);
        Ok(())
    }
}

/// **Ra** — transforms, projects, clips, shades, and resolves hidden
/// surfaces with the configured algorithm. Under image partitioning the
/// copy set owns one horizontal band of the screen.
pub struct RasterFilter {
    cfg: SharedConfig,
    alg: Algorithm,
    scissor: Option<(u32, u32)>,
    stage: Option<RasterStage>,
}

impl RasterFilter {
    /// Build for the given algorithm (image-replicated: every copy sees
    /// the whole screen).
    pub fn new(cfg: SharedConfig, alg: Algorithm) -> Self {
        RasterFilter {
            cfg,
            alg,
            scissor: None,
            stage: None,
        }
    }

    /// Build a copy owning only image rows `[band.0, band.1)`.
    pub fn partitioned(cfg: SharedConfig, alg: Algorithm, band: (u32, u32)) -> Self {
        RasterFilter {
            cfg,
            alg,
            scissor: Some(band),
            stage: None,
        }
    }
}

impl Filter for RasterFilter {
    fn init(&mut self, _ctx: &mut FilterCtx) {
        // The z-buffer / WPA is allocated in init, per the paper.
        self.stage = Some(RasterStage::with_scissor(self.alg, &self.cfg, self.scissor));
    }

    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        let stage = self.stage.as_mut().expect("init ran");
        while let Some(b) = ctx.read(0) {
            let batch = ctx
                .buffer_slab()
                .recycle_ctx::<TriBatch>(b, "Ra filter input");
            stage.feed(&self.cfg, ctx, batch, write_raout);
        }
        stage.finish(&self.cfg, ctx, write_raout);
        Ok(())
    }

    fn finalize(&mut self, _ctx: &mut FilterCtx) {
        self.stage = None;
    }
}

/// **Ra/t** — [`RasterFilter`] for the tile-composite group: every
/// outgoing partial result is cut at tile boundaries by a [`TileSplitter`]
/// and routed to the merge copy set owning its tile via
/// `FilterCtx::write_tile` over a tile-hash stream.
pub struct TiledRasterFilter {
    cfg: SharedConfig,
    alg: Algorithm,
    stage: Option<RasterStage>,
    splitter: TileSplitter,
}

impl TiledRasterFilter {
    /// Build for the given algorithm; tiling comes from `cfg.tile_rows()`.
    pub fn new(cfg: SharedConfig, alg: Algorithm) -> Self {
        let splitter = TileSplitter::new(cfg.tile_rows(), cfg.n_tiles());
        TiledRasterFilter {
            cfg,
            alg,
            stage: None,
            splitter,
        }
    }
}

fn write_tile_raout(ctx: &mut FilterCtx, tile: u32, r: RaOut) {
    let wire = r.wire_bytes();
    let buf = ctx.buffer_slab().make_spillable(r, wire);
    ctx.write_tile(0, tile as u64, buf);
}

impl Filter for TiledRasterFilter {
    fn init(&mut self, _ctx: &mut FilterCtx) {
        self.stage = Some(RasterStage::new(self.alg, &self.cfg));
    }

    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        let Self {
            cfg,
            stage,
            splitter,
            ..
        } = self;
        let stage = stage.as_mut().expect("init ran");
        let mut sink = |ctx: &mut FilterCtx, r: RaOut| {
            splitter.split(r, |tile, frag| write_tile_raout(ctx, tile, frag));
        };
        while let Some(b) = ctx.read(0) {
            let batch = ctx
                .buffer_slab()
                .recycle_ctx::<TriBatch>(b, "Ra filter input");
            stage.feed(cfg, ctx, batch, &mut sink);
        }
        stage.finish(cfg, ctx, &mut sink);
        Ok(())
    }

    fn finalize(&mut self, _ctx: &mut FilterCtx) {
        self.stage = None;
    }
}

/// **Mt** — one copy of the parallel merge group: composites the tiles it
/// owns (any tile it receives — ownership is enforced by the producer's
/// tile-hash routing, and the fold is commutative, so fault-time rerouting
/// composites correctly anywhere) and ships the finished tiles to the
/// assembler once its input hits end-of-work.
pub struct TileMergeFilter {
    cfg: SharedConfig,
    stage: Option<TileMergeStage>,
}

impl TileMergeFilter {
    /// Build over the shared config's tiling.
    pub fn new(cfg: SharedConfig) -> Self {
        TileMergeFilter { cfg, stage: None }
    }
}

impl Filter for TileMergeFilter {
    fn init(&mut self, _ctx: &mut FilterCtx) {
        self.stage = Some(TileMergeStage::new(self.cfg.clone()));
    }

    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        let stage = self.stage.as_mut().expect("init ran");
        while let Some(b) = ctx.read(0) {
            let out = ctx.buffer_slab().recycle_ctx::<RaOut>(b, "Mt filter input");
            stage.feed(ctx, out);
        }
        // The read loop drained to end-of-work: every fragment for this
        // copy's tiles has been folded, so the composited tiles are final
        // and can travel to the assembler.
        stage.finish(ctx, write_raout);
        Ok(())
    }

    fn finalize(&mut self, _ctx: &mut FilterCtx) {
        self.stage = None;
    }
}

/// **M** — composites partial results into the final image (always a
/// single copy, per the paper).
pub struct MergeFilter {
    stage: Option<MergeStage>,
    cfg: SharedConfig,
    slot: ImageSlot,
}

impl MergeFilter {
    /// The final image is deposited into `slot` at finalize.
    pub fn new(cfg: SharedConfig, slot: ImageSlot) -> Self {
        MergeFilter {
            stage: None,
            cfg,
            slot,
        }
    }
}

impl Filter for MergeFilter {
    fn init(&mut self, _ctx: &mut FilterCtx) {
        self.stage = Some(MergeStage::new(self.cfg.clone()));
    }

    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        let stage = self.stage.as_mut().expect("init ran");
        while let Some(b) = ctx.read(0) {
            let out = ctx.buffer_slab().recycle_ctx::<RaOut>(b, "M filter input");
            stage.feed(ctx, out);
        }
        Ok(())
    }

    fn finalize(&mut self, _ctx: &mut FilterCtx) {
        if let Some(stage) = self.stage.take() {
            self.slot.lock().push(stage.image());
        }
    }
}

/// **RE** — fused read + extract (the paper's best-performing grouping
/// pairs this with separate `Ra`).
pub struct ReadExtractFilter {
    read: ReadStage,
    extract: ExtractStage,
}

impl ReadExtractFilter {
    /// `node_index` selects the storage node this copy serves.
    pub fn new(cfg: SharedConfig, node_index: usize) -> Self {
        ReadExtractFilter {
            read: ReadStage {
                cfg: cfg.clone(),
                node_index,
            },
            extract: ExtractStage::new(cfg),
        }
    }
}

impl Filter for ReadExtractFilter {
    fn init(&mut self, _ctx: &mut FilterCtx) {
        self.extract.reset();
    }

    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        let extract = &mut self.extract;
        self.read.run(ctx, |ctx, chunk| {
            extract.feed(ctx, chunk, write_tris);
        });
        extract.flush(ctx, write_tris);
        Ok(())
    }
}

/// **REp** — read + extract with screen-space routing: each triangle batch
/// is addressed (via targeted writes) to the raster copy set owning the
/// image band it falls in. The image-partitioned configuration from the
/// paper's §6 future work.
pub struct PartitionedReadExtractFilter {
    read: ReadStage,
    extract: RoutedExtractStage,
}

impl PartitionedReadExtractFilter {
    /// `node_index` selects the storage node; `bands` are the raster copy
    /// sets' image bands, indexed by copy-set index.
    pub fn new(cfg: SharedConfig, node_index: usize, bands: Vec<(u32, u32)>) -> Self {
        PartitionedReadExtractFilter {
            read: ReadStage {
                cfg: cfg.clone(),
                node_index,
            },
            extract: RoutedExtractStage::new(cfg, bands),
        }
    }
}

impl Filter for PartitionedReadExtractFilter {
    fn init(&mut self, _ctx: &mut FilterCtx) {
        self.extract.reset();
    }

    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        let extract = &mut self.extract;
        let route = |ctx: &mut FilterCtx, band: usize, b: TriBatch| {
            let wire = b.wire_bytes();
            let buf = ctx.buffer_slab().make_spillable(b, wire);
            ctx.write_to(0, band, buf);
        };
        self.read.run(ctx, |ctx, chunk| {
            extract.feed(ctx, chunk, route);
        });
        extract.flush(ctx, route);
        Ok(())
    }
}

/// **ERa** — fused extract + raster.
pub struct ExtractRasterFilter {
    cfg: SharedConfig,
    alg: Algorithm,
    extract: ExtractStage,
    raster: Option<RasterStage>,
}

impl ExtractRasterFilter {
    /// Build for the given algorithm.
    pub fn new(cfg: SharedConfig, alg: Algorithm) -> Self {
        ExtractRasterFilter {
            extract: ExtractStage::new(cfg.clone()),
            cfg,
            alg,
            raster: None,
        }
    }
}

impl Filter for ExtractRasterFilter {
    fn init(&mut self, _ctx: &mut FilterCtx) {
        self.extract.reset();
        self.raster = Some(RasterStage::new(self.alg, &self.cfg));
    }

    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        let raster = self.raster.as_mut().expect("init ran");
        let extract = &mut self.extract;
        let cfg = &self.cfg;
        while let Some(b) = ctx.read(0) {
            let chunk = ctx
                .buffer_slab()
                .recycle_ctx::<ChunkPayload>(b, "ERa filter input");
            extract.feed(ctx, chunk, |ctx, tris| {
                raster.feed(cfg, ctx, tris, write_raout);
            });
        }
        extract.flush(ctx, |ctx, tris| {
            raster.feed(cfg, ctx, tris, write_raout);
        });
        raster.finish(cfg, ctx, write_raout);
        Ok(())
    }
}

/// **RERa** — fully fused read + extract + raster (SPMD-like; only the
/// merge remains separate).
pub struct ReadExtractRasterFilter {
    cfg: SharedConfig,
    alg: Algorithm,
    read: ReadStage,
    extract: ExtractStage,
    raster: Option<RasterStage>,
}

impl ReadExtractRasterFilter {
    /// `node_index` selects the storage node this copy serves.
    pub fn new(cfg: SharedConfig, alg: Algorithm, node_index: usize) -> Self {
        ReadExtractRasterFilter {
            read: ReadStage {
                cfg: cfg.clone(),
                node_index,
            },
            extract: ExtractStage::new(cfg.clone()),
            cfg,
            alg,
            raster: None,
        }
    }
}

impl Filter for ReadExtractRasterFilter {
    fn init(&mut self, _ctx: &mut FilterCtx) {
        self.extract.reset();
        self.raster = Some(RasterStage::new(self.alg, &self.cfg));
    }

    fn process(&mut self, ctx: &mut FilterCtx) -> Result<(), FilterError> {
        let raster = self.raster.as_mut().expect("init ran");
        let extract = &mut self.extract;
        let cfg = &self.cfg;
        self.read.run(ctx, |ctx, chunk| {
            extract.feed(ctx, chunk, |ctx, tris| {
                raster.feed(cfg, ctx, tris, write_raout);
            });
        });
        extract.flush(ctx, |ctx, tris| {
            raster.feed(cfg, ctx, tris, write_raout);
        });
        raster.finish(cfg, ctx, write_raout);
        Ok(())
    }
}
