//! Recycled buffer storage for the streaming payloads.
//!
//! Every payload travelling E → Ra → M carries a `Vec` (triangles, depth
//! bands, winning pixels). Allocating those per batch dominates the hot
//! path once the kernels themselves are fast, so each producer stage owns
//! a [`BufferPool`] and wraps outgoing buffers in [`PoolVec`]s: when the
//! consumer drops the payload, the buffer flows back to the producer's
//! free list instead of the allocator. After one warm-up unit of work the
//! steady state allocates nothing per buffer — [`BufferPool::allocated`]
//! counts exactly the pool misses, which is what the zero-alloc
//! integration test pins down.
//!
//! Pools are keyed per stage *copy* (each copy constructs its own), so
//! there is no cross-copy contention beyond the producer/consumer
//! hand-off itself.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct PoolInner<T> {
    free: Mutex<Vec<Vec<T>>>,
    /// Fresh `Vec`s handed out because the free list was empty.
    misses: AtomicU64,
}

/// A shared free list of `Vec<T>` buffers. Cloning shares the list.
pub struct BufferPool<T> {
    inner: Arc<PoolInner<T>>,
}

impl<T> Clone for BufferPool<T> {
    fn clone(&self) -> Self {
        BufferPool {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Default for BufferPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BufferPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                misses: AtomicU64::new(0),
            }),
        }
    }

    /// An empty buffer with room for `capacity` elements, recycled from
    /// the free list when possible. The returned [`PoolVec`] flows back
    /// here on drop.
    pub fn take(&self, capacity: usize) -> PoolVec<T> {
        let buf = match self.inner.free.lock().expect("pool lock").pop() {
            Some(mut v) => {
                v.reserve(capacity.saturating_sub(v.capacity()));
                v
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        };
        PoolVec {
            buf,
            home: Some(self.clone()),
        }
    }

    /// A recycled raw buffer, or `None` if the free list is empty. For
    /// feeding spares into sinks that manage reuse themselves (e.g.
    /// [`isosurf::ActivePixelBuffer::supply`]).
    pub fn try_take_raw(&self) -> Option<Vec<T>> {
        self.inner.free.lock().expect("pool lock").pop()
    }

    /// Wrap an externally produced buffer so it recycles into this pool
    /// on drop (used for buffers that left via [`try_take_raw`](Self::try_take_raw)).
    pub fn adopt(&self, buf: Vec<T>) -> PoolVec<T> {
        PoolVec {
            buf,
            home: Some(self.clone()),
        }
    }

    /// Return a buffer to the free list.
    pub fn put(&self, mut buf: Vec<T>) {
        buf.clear();
        self.inner.free.lock().expect("pool lock").push(buf);
    }

    /// Number of fresh allocations the pool has performed (free-list
    /// misses). Flat across iterations ⇒ the hot path recycles fully.
    pub fn allocated(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }
}

/// A `Vec<T>` that returns to its [`BufferPool`] when dropped. Payloads
/// hold these instead of bare `Vec`s; construction sites that have no
/// pool use `From<Vec<T>>` (drop then simply frees).
pub struct PoolVec<T> {
    buf: Vec<T>,
    home: Option<BufferPool<T>>,
}

impl<T> PoolVec<T> {
    /// Mutable access to the underlying `Vec` for filling.
    pub fn buf_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }

    /// Detach the buffer, bypassing recycling.
    pub fn into_inner(mut self) -> Vec<T> {
        self.home = None;
        std::mem::take(&mut self.buf)
    }
}

/// Replication for lossless-recovery retention: the clone draws its
/// backing buffer from the same pool (alloc-free at steady state) and
/// recycles there on drop, so retained replicas cost no allocator traffic
/// once the pool is warm.
impl<T: Clone> Clone for PoolVec<T> {
    fn clone(&self) -> Self {
        let mut out = match &self.home {
            Some(home) => home.take(self.buf.len()),
            None => PoolVec {
                buf: Vec::with_capacity(self.buf.len()),
                home: None,
            },
        };
        out.buf.extend(self.buf.iter().cloned());
        out
    }
}

impl<T> From<Vec<T>> for PoolVec<T> {
    fn from(buf: Vec<T>) -> Self {
        PoolVec { buf, home: None }
    }
}

/// An empty, homeless buffer — the state `mem::take` leaves behind when a
/// payload box is recycled through a [`BufferSlab`](datacutter::BufferSlab).
impl<T> Default for PoolVec<T> {
    fn default() -> Self {
        PoolVec {
            buf: Vec::new(),
            home: None,
        }
    }
}

impl<T> Deref for PoolVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.buf
    }
}

impl<T> DerefMut for PoolVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.buf
    }
}

impl<T> Drop for PoolVec<T> {
    fn drop(&mut self) {
        if let Some(home) = self.home.take() {
            home.put(std::mem::take(&mut self.buf));
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for PoolVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.buf.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_returns_buffer_to_pool() {
        let pool: BufferPool<u32> = BufferPool::new();
        let mut v = pool.take(8);
        v.buf_mut().extend([1, 2, 3]);
        let addr = v.as_ptr();
        drop(v);
        assert_eq!(pool.allocated(), 1);
        let v2 = pool.take(8);
        assert_eq!(
            v2.as_ptr(),
            addr,
            "free list should hand back the same buffer"
        );
        assert!(v2.is_empty(), "recycled buffers come back cleared");
        assert_eq!(pool.allocated(), 1, "second take must not allocate");
    }

    #[test]
    fn unpooled_from_vec_just_frees() {
        let v: PoolVec<u8> = vec![1, 2, 3].into();
        assert_eq!(&*v, &[1, 2, 3]);
        drop(v); // no pool: plain deallocation, nothing to assert beyond no panic
    }

    #[test]
    fn adopt_recycles_external_buffers() {
        let pool: BufferPool<u8> = BufferPool::new();
        let v = pool.adopt(Vec::with_capacity(16));
        drop(v);
        assert_eq!(pool.allocated(), 0);
        assert!(pool.try_take_raw().is_some());
        assert!(pool.try_take_raw().is_none());
    }

    #[test]
    fn steady_state_take_put_never_allocates() {
        let pool: BufferPool<u64> = BufferPool::new();
        for _ in 0..100 {
            let mut v = pool.take(32);
            v.buf_mut().extend(0..32);
        }
        assert_eq!(pool.allocated(), 1);
    }
}
