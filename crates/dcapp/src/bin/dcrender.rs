//! `dcrender` — command-line isosurface renderer on the emulated cluster.
//!
//! ```text
//! cargo run --release -p dcapp --bin dcrender -- \
//!     --nodes 4 --grid 64 --image 512 --iso 0.5 --species 0 --timestep 2 \
//!     --grouping re-ra-m --policy dd --algorithm ap --out render.ppm
//! ```
//!
//! Run with `--help` for the full flag list. `--plan` lets the automatic
//! planner pick grouping/placement/policy instead.

use std::process::exit;
use std::sync::Arc;

use datacutter::{Placement, WritePolicy};
use dcapp::{Algorithm, AppConfig, Grouping, PipelineSpec};
use hetsim::presets::rogue_cluster;
use volume::{Dataset, Dims};

struct Args {
    nodes: usize,
    grid: u32,
    image: u32,
    iso: f32,
    species: u32,
    timestep: u32,
    seed: u64,
    grouping: String,
    policy: String,
    algorithm: String,
    executor: String,
    workers: usize,
    memory_budget: u64,
    cache_capacity: u64,
    prefetch_depth: u32,
    storage_faults: Option<u64>,
    storage_retries: Option<u32>,
    out: String,
    plan: bool,
    verbose: bool,
}

const HELP: &str = "dcrender — isosurface rendering on an emulated heterogeneous cluster

USAGE: dcrender [FLAGS]

  --nodes N        cluster size (default 4)
  --grid N         volume cells per axis (default 64)
  --image N        output image width=height (default 512)
  --iso V          isosurface value (default 0.5)
  --species N      chemical species 0..3 (default 0)
  --timestep N     stored timestep 0..9 (default 0)
  --seed N         dataset seed (default 42)
  --grouping G     rera-m | re-ra-m | r-era-m | part (default re-ra-m)
  --policy P       rr | wrr | dd (default dd)
  --algorithm A    zb | ap (default ap)
  --executor E     sim | native | tasked (default sim)
  --workers N      tasked worker-pool size, 0 = core count (default 0)
  --memory-budget B   in-flight stream-buffer byte budget; over-budget
                      streams spill to a temp-file ring, 0 = off (default 0)
  --cache-capacity B  shared decoded-chunk cache bytes, 0 = off (default 0)
  --prefetch-depth N  read-ahead chunks in flight, sim executor only,
                      0 = off (default 0)
  --storage-faults S  inject seeded transient disk errors into the spill
                      ring (seed S); the run retries/degrades through the
                      storage ladder and prints its fault report
  --storage-retries N retry budget per storage op before degrading
                      (default 8, max 64)
  --out PATH       output PPM path (default render.ppm)
  --plan           let the planner choose grouping/placement/policy
  --verbose        print per-copy metrics and host utilization
  --help           this text";

fn parse_args() -> Args {
    let mut a = Args {
        nodes: 4,
        grid: 64,
        image: 512,
        iso: 0.5,
        species: 0,
        timestep: 0,
        seed: 42,
        grouping: "re-ra-m".into(),
        policy: "dd".into(),
        algorithm: "ap".into(),
        executor: "sim".into(),
        workers: 0,
        memory_budget: 0,
        cache_capacity: 0,
        prefetch_depth: 0,
        storage_faults: None,
        storage_retries: None,
        out: "render.ppm".into(),
        plan: false,
        verbose: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {}", argv[*i - 1]);
            exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--nodes" => a.nodes = next(&mut i).parse().expect("--nodes"),
            "--grid" => a.grid = next(&mut i).parse().expect("--grid"),
            "--image" => a.image = next(&mut i).parse().expect("--image"),
            "--iso" => a.iso = next(&mut i).parse().expect("--iso"),
            "--species" => a.species = next(&mut i).parse().expect("--species"),
            "--timestep" => a.timestep = next(&mut i).parse().expect("--timestep"),
            "--seed" => a.seed = next(&mut i).parse().expect("--seed"),
            "--grouping" => a.grouping = next(&mut i),
            "--policy" => a.policy = next(&mut i),
            "--algorithm" => a.algorithm = next(&mut i),
            "--executor" => a.executor = next(&mut i),
            "--workers" => a.workers = next(&mut i).parse().expect("--workers"),
            "--memory-budget" => a.memory_budget = next(&mut i).parse().expect("--memory-budget"),
            "--cache-capacity" => {
                a.cache_capacity = next(&mut i).parse().expect("--cache-capacity")
            }
            "--prefetch-depth" => {
                a.prefetch_depth = next(&mut i).parse().expect("--prefetch-depth")
            }
            "--storage-faults" => {
                a.storage_faults = Some(next(&mut i).parse().expect("--storage-faults"))
            }
            "--storage-retries" => {
                a.storage_retries = Some(next(&mut i).parse().expect("--storage-retries"))
            }
            "--out" => a.out = next(&mut i),
            "--plan" => a.plan = true,
            "--verbose" => a.verbose = true,
            "--help" | "-h" => {
                println!("{HELP}");
                exit(0);
            }
            other => {
                eprintln!("unknown flag {other}\n\n{HELP}");
                exit(2);
            }
        }
        i += 1;
    }
    a
}

fn main() {
    let args = parse_args();
    let (topo, hosts) = rogue_cluster(args.nodes);

    // Chunk the volume ~16 cells per axis per chunk.
    let per_axis = (args.grid / 16).max(1);
    let dataset = Dataset::generate(
        Dims::new(args.grid + 1, args.grid + 1, args.grid + 1),
        (per_axis, per_axis, per_axis),
        64.min(per_axis.pow(3)).max(1),
        args.seed,
    );
    let mut cfg = AppConfig::new(dataset, hosts.clone(), 2, args.image, args.image);
    cfg.iso = args.iso;
    cfg.species = args.species % volume::SPECIES_COUNT;
    cfg.timestep = args.timestep % volume::TIMESTEPS;
    cfg.material = isosurf::species_material(cfg.species);
    cfg.executor = args.executor.parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(2);
    });
    cfg.worker_threads = args.workers;
    cfg.memory_budget_bytes = args.memory_budget;
    cfg.cache_capacity = args.cache_capacity;
    cfg.prefetch_depth = args.prefetch_depth;
    if let Some(budget) = args.storage_retries {
        cfg.storage_retry_budget = budget;
    }
    if let Err(e) = cfg.validate() {
        eprintln!("{e}");
        exit(2);
    }
    let cfg = Arc::new(cfg);

    let spec = if args.plan {
        let plan = dcapp::plan(&topo, &cfg, &hosts);
        println!("planner: {}", plan.rationale);
        plan.spec
    } else {
        let everywhere = Placement::one_per_host(&hosts);
        PipelineSpec {
            grouping: match args.grouping.as_str() {
                "rera-m" => Grouping::RERaM,
                "re-ra-m" => Grouping::RERaSplit { raster: everywhere },
                "r-era-m" => Grouping::REraSplit { era: everywhere },
                "part" => Grouping::ImagePartitioned { raster: everywhere },
                g => {
                    eprintln!("unknown grouping {g}");
                    exit(2);
                }
            },
            algorithm: match args.algorithm.as_str() {
                "zb" => Algorithm::ZBuffer,
                "ap" => Algorithm::ActivePixel,
                x => {
                    eprintln!("unknown algorithm {x}");
                    exit(2);
                }
            },
            policy: match args.policy.as_str() {
                "rr" => WritePolicy::RoundRobin,
                "wrr" => WritePolicy::WeightedRoundRobin,
                "dd" => WritePolicy::demand_driven(),
                p => {
                    eprintln!("unknown policy {p}");
                    exit(2);
                }
            },
            merge_host: hosts[0],
        }
    };

    println!(
        "rendering {}^3 cells at {}x{} on {} nodes: {} + {} + {} [{}]",
        args.grid,
        args.image,
        args.image,
        args.nodes,
        spec.grouping.label(),
        spec.policy.label(),
        spec.algorithm.label(),
        cfg.executor
    );
    let r = if let Some(seed) = args.storage_faults {
        // Seeded transient disk errors on every host's spill ring for the
        // whole run window; the storage ladder retries through them, so the
        // image stays bit-identical to a fault-free run.
        let window = hetsim::SimDuration::from_secs(3600);
        let mut chaos = datacutter::NativeFaultPlan::new().storage_seed(seed);
        for &h in &hosts {
            chaos = chaos
                .disk_error(
                    h,
                    hetsim::SimTime::ZERO,
                    window,
                    0.2,
                    hetsim::DiskFaultKind::Write,
                )
                .disk_error(
                    h,
                    hetsim::SimTime::ZERO,
                    window,
                    0.2,
                    hetsim::DiskFaultKind::Read,
                );
        }
        dcapp::run_pipeline_faulted_exec(
            &topo,
            &cfg,
            &spec,
            chaos.options(),
            dcapp::executor_for(&cfg),
        )
    } else {
        dcapp::run_pipeline_exec(&topo, &cfg, &spec, dcapp::executor_for(&cfg))
    }
    .unwrap_or_else(|e| {
        eprintln!("run failed: {e}");
        exit(1);
    });
    println!(
        "done in {:.3} {} seconds ({} engine events, {} surface pixels)",
        r.elapsed.as_secs_f64(),
        if cfg.executor == dcapp::ExecutorKind::Sim {
            "virtual"
        } else {
            "wall-clock"
        },
        r.report.events,
        r.image.coverage(isosurf::BACKGROUND)
    );
    if cfg.memory_budget_bytes > 0 {
        let ooc = r.report.ooc;
        println!(
            "out-of-core: budget {} B, {} spills ({} B), {} faults ({} B)",
            ooc.memory_budget_bytes, ooc.spills, ooc.spill_bytes, ooc.faults, ooc.fault_bytes
        );
    }
    if args.storage_faults.is_some() {
        println!("{}", r.report.faults);
    }
    if let Some(cache) = cfg.chunk_cache() {
        let s = cache.stats();
        println!(
            "chunk cache: {}/{} lookups hit ({:.0}%), {} B resident of {} B",
            s.hits,
            s.lookups(),
            s.hit_rate() * 100.0,
            s.resident_bytes,
            s.capacity_bytes
        );
    }
    if args.verbose {
        for c in &r.report.copies {
            println!(
                "  {:>6} #{} @h{:<2} in {:>5} out {:>5} work {:>8.4}s stall {:>8.4}s",
                c.filter_name,
                c.copy_index,
                c.host.0,
                c.counters.buffers_in,
                c.counters.buffers_out,
                c.counters.work.as_secs_f64(),
                (c.counters.read_wait + c.counters.write_wait).as_secs_f64()
            );
        }
        for u in topo.utilization(r.elapsed) {
            println!("  {u}");
        }
    }
    r.image.save_ppm(&args.out).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", args.out);
        exit(1);
    });
    println!("wrote {}", args.out);
}
