//! Graph construction for the paper's filter groupings (Figure 3) plus the
//! fully isolated four-stage pipeline used by the baseline experiment
//! (Tables 1–2).

use datacutter::{AppGraph, FilterId, GraphBuilder, Placement, StreamId, WritePolicy};
use hetsim::HostId;

use crate::config::{Algorithm, SharedConfig};
use crate::filters::{
    ExtractFilter, ExtractRasterFilter, ImageSlot, MergeFilter, PartitionedReadExtractFilter,
    RasterFilter, ReadExtractFilter, ReadExtractRasterFilter, ReadFilter, TileMergeFilter,
    TiledRasterFilter,
};

/// How the application is decomposed into filters.
#[derive(Debug, Clone)]
pub enum Grouping {
    /// `R–E–Ra–M`: every stage isolated (the paper's baseline experiment;
    /// each placement names where the stage runs).
    FourStage {
        /// Placement of the extract filter.
        extract: Placement,
        /// Placement of the raster filter.
        raster: Placement,
    },
    /// `RERa–M`: read+extract+raster fused on the storage nodes.
    RERaM,
    /// `RE–Ra–M`: read+extract on storage nodes, raster placed separately.
    RERaSplit {
        /// Placement of the raster copies.
        raster: Placement,
    },
    /// `R–ERa–M`: read alone on storage nodes, extract+raster placed
    /// separately.
    REraSplit {
        /// Placement of the extract+raster copies.
        era: Placement,
    },
    /// `RE–Ra–Mt–A`: **tile-owned compositing** — the merge becomes a
    /// parallel filter group. The image is cut into fixed row-strip tiles
    /// (`cfg.tile_size`); raster copies split every partial result at tile
    /// boundaries and tile-hash-route each fragment to the merge copy set
    /// owning its tile; each merge copy composites only its tiles; a
    /// lightweight assembler (`A`, on `merge_host`) stitches the finished
    /// tiles after end-of-work. Bit-identical to the single-sink merge —
    /// the fold is the same commutative depth test over disjoint regions.
    TileComposite {
        /// Placement of the raster copies.
        raster: Placement,
        /// Placement of the merge group; each *host* is one copy set
        /// owning the tiles congruent to its set index.
        merge: Placement,
    },
    /// `RE–Ra–M` with **image partitioning** (the paper's §6 alternative):
    /// each raster copy set owns one horizontal band of the screen;
    /// triangle batches are routed to the owning set, so the merge filter
    /// only concatenates disjoint regions instead of depth-resolving
    /// overlaps. Sensitive to screen-space load imbalance.
    ImagePartitioned {
        /// Placement of the raster copies; each *host* owns one band.
        raster: Placement,
    },
}

impl Grouping {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Grouping::FourStage { .. } => "R-E-Ra-M",
            Grouping::RERaM => "RERa-M",
            Grouping::RERaSplit { .. } => "RE-Ra-M",
            Grouping::REraSplit { .. } => "R-ERa-M",
            Grouping::ImagePartitioned { .. } => "RE-Ra-M/part",
            Grouping::TileComposite { .. } => "RE-Ra-Mt-A",
        }
    }
}

/// A fully specified pipeline instance.
pub struct PipelineSpec {
    /// Filter grouping and compute placement.
    pub grouping: Grouping,
    /// Hidden-surface removal algorithm.
    pub algorithm: Algorithm,
    /// Writer policy on the inter-filter data streams.
    pub policy: WritePolicy,
    /// Host running the single merge copy.
    pub merge_host: HostId,
}

/// Handles returned with a built graph, for running and inspecting it.
pub struct Pipeline {
    /// The application graph, ready for `datacutter::Run`.
    pub graph: AppGraph,
    /// Where the merge filter deposits the final image.
    pub image: ImageSlot,
    /// The stream feeding the raster stage (`E→Ra` or `R→ERa`), if the
    /// grouping has one — the stream the paper's Table 3 instruments.
    pub to_raster: Option<StreamId>,
    /// The stream into the merge filter.
    pub to_merge: StreamId,
    /// Filter ids in pipeline order (for per-filter metrics).
    pub filters: Vec<FilterId>,
}

/// Build the graph for `spec` over `cfg`'s dataset and storage hosts.
///
/// Read-side filters (R, RE, or RERa) always run one copy per storage
/// host, since they must sit with the data.
///
/// # Panics
///
/// On a config that fails [`AppConfig::validate`](crate::config::AppConfig::validate) —
/// use [`try_build_pipeline`] to handle the [`ConfigError`] instead.
pub fn build_pipeline(cfg: &SharedConfig, spec: &PipelineSpec) -> Pipeline {
    match try_build_pipeline(cfg, spec) {
        Ok(p) => p,
        Err(e) => panic!("{e}"),
    }
}

/// [`build_pipeline`] with construction-time config validation: every
/// sizing knob is checked before any filter factory runs, so a zero-sized
/// batch or empty storage set is a structured [`ConfigError`] here rather
/// than a panic or hang mid-run.
pub fn try_build_pipeline(
    cfg: &SharedConfig,
    spec: &PipelineSpec,
) -> Result<Pipeline, crate::config::ConfigError> {
    cfg.validate()?;
    let image: ImageSlot = ImageSlot::default();
    let storage = Placement::one_per_host(&cfg.storage_hosts);
    let mut g = GraphBuilder::new();
    let alg = spec.algorithm;

    // The read-side copy on storage host k serves storage node k. With one
    // copy per host in placement order, copy_index == node index.
    let mk_read_index = |info: datacutter::CopyInfo| info.copy_index;

    let (filters, to_raster, to_merge) = match &spec.grouping {
        Grouping::FourStage { extract, raster } => {
            let cfg2 = cfg.clone();
            let r = g.add_filter("R", storage, move |info| {
                ReadFilter::new(cfg2.clone(), mk_read_index(info))
            });
            let cfg2 = cfg.clone();
            let e = g.add_filter("E", extract.clone(), move |_| {
                ExtractFilter::new(cfg2.clone())
            });
            let cfg2 = cfg.clone();
            let ra = g.add_filter("Ra", raster.clone(), move |_| {
                RasterFilter::new(cfg2.clone(), alg)
            });
            let cfg2 = cfg.clone();
            let slot = image.clone();
            let m = g.add_filter("M", Placement::on_host(spec.merge_host, 1), move |_| {
                MergeFilter::new(cfg2.clone(), slot.clone())
            });
            g.connect(r, e, spec.policy);
            let s_ra = g.connect(e, ra, spec.policy);
            let s_m = g.connect(ra, m, spec.policy);
            (vec![r, e, ra, m], Some(s_ra), s_m)
        }
        Grouping::RERaM => {
            let cfg2 = cfg.clone();
            let rera = g.add_filter("RERa", storage, move |info| {
                ReadExtractRasterFilter::new(cfg2.clone(), alg, mk_read_index(info))
            });
            let cfg2 = cfg.clone();
            let slot = image.clone();
            let m = g.add_filter("M", Placement::on_host(spec.merge_host, 1), move |_| {
                MergeFilter::new(cfg2.clone(), slot.clone())
            });
            let s_m = g.connect(rera, m, spec.policy);
            (vec![rera, m], None, s_m)
        }
        Grouping::RERaSplit { raster } => {
            let cfg2 = cfg.clone();
            let re = g.add_filter("RE", storage, move |info| {
                ReadExtractFilter::new(cfg2.clone(), mk_read_index(info))
            });
            let cfg2 = cfg.clone();
            let ra = g.add_filter("Ra", raster.clone(), move |_| {
                RasterFilter::new(cfg2.clone(), alg)
            });
            let cfg2 = cfg.clone();
            let slot = image.clone();
            let m = g.add_filter("M", Placement::on_host(spec.merge_host, 1), move |_| {
                MergeFilter::new(cfg2.clone(), slot.clone())
            });
            let s_ra = g.connect(re, ra, spec.policy);
            let s_m = g.connect(ra, m, spec.policy);
            (vec![re, ra, m], Some(s_ra), s_m)
        }
        Grouping::ImagePartitioned { raster } => {
            let bands = crate::parts::split_bands(cfg.camera.height, raster.per_host.len());
            let cfg2 = cfg.clone();
            let bands2 = bands.clone();
            let re = g.add_filter("REp", storage, move |info| {
                PartitionedReadExtractFilter::new(cfg2.clone(), mk_read_index(info), bands2.clone())
            });
            let cfg2 = cfg.clone();
            let ra = g.add_filter("Ra", raster.clone(), move |info| {
                RasterFilter::partitioned(cfg2.clone(), alg, bands[info.copyset_index])
            });
            let cfg2 = cfg.clone();
            let slot = image.clone();
            let m = g.add_filter("M", Placement::on_host(spec.merge_host, 1), move |_| {
                MergeFilter::new(cfg2.clone(), slot.clone())
            });
            // The policy on the RE->Ra stream is nominal: routing happens
            // via targeted writes.
            let s_ra = g.connect(re, ra, spec.policy);
            let s_m = g.connect(ra, m, spec.policy);
            (vec![re, ra, m], Some(s_ra), s_m)
        }
        Grouping::TileComposite { raster, merge } => {
            let cfg2 = cfg.clone();
            let re = g.add_filter("RE", storage, move |info| {
                ReadExtractFilter::new(cfg2.clone(), mk_read_index(info))
            });
            let cfg2 = cfg.clone();
            let ra = g.add_filter("Ra", raster.clone(), move |_| {
                TiledRasterFilter::new(cfg2.clone(), alg)
            });
            let cfg2 = cfg.clone();
            let mt = g.add_filter("Mt", merge.clone(), move |_| {
                TileMergeFilter::new(cfg2.clone())
            });
            let cfg2 = cfg.clone();
            let slot = image.clone();
            let a = g.add_filter("A", Placement::on_host(spec.merge_host, 1), move |_| {
                MergeFilter::new(cfg2.clone(), slot.clone())
            });
            let s_ra = g.connect(re, ra, spec.policy);
            // The merge-group stream is structurally tile-hash: fragments
            // are routed by tile ownership, not by the spec policy.
            let s_m = g.connect(ra, mt, WritePolicy::TileHash);
            // One single-copy assembler set: policy is nominal.
            g.connect(mt, a, WritePolicy::RoundRobin);
            (vec![re, ra, mt, a], Some(s_ra), s_m)
        }
        Grouping::REraSplit { era } => {
            let cfg2 = cfg.clone();
            let r = g.add_filter("R", storage, move |info| {
                ReadFilter::new(cfg2.clone(), mk_read_index(info))
            });
            let cfg2 = cfg.clone();
            let era_f = g.add_filter("ERa", era.clone(), move |_| {
                ExtractRasterFilter::new(cfg2.clone(), alg)
            });
            let cfg2 = cfg.clone();
            let slot = image.clone();
            let m = g.add_filter("M", Placement::on_host(spec.merge_host, 1), move |_| {
                MergeFilter::new(cfg2.clone(), slot.clone())
            });
            let s_ra = g.connect(r, era_f, spec.policy);
            let s_m = g.connect(era_f, m, spec.policy);
            (vec![r, era_f, m], Some(s_ra), s_m)
        }
    };

    Ok(Pipeline {
        graph: g.build(),
        image,
        to_raster,
        to_merge,
        filters,
    })
}
