//! # dcapp — the isosurface rendering application on DataCutter
//!
//! The paper's case study (Section 3) expressed as DataCutter filters:
//! `R` (read declustered chunks), `E` (marching-cubes extraction), `Ra`
//! (raster with z-buffer or active-pixel hidden-surface removal), and `M`
//! (merge partial results into the final image) — plus the fused groupings
//! `RERa–M`, `RE–Ra–M`, and `R–ERa–M` of Figure 3.
//!
//! All real computation happens (chunks are extracted, triangles
//! rasterized, images composed and checked against a sequential
//! reference); CPU/disk/network *costs* are charged to the emulated
//! cluster through a calibrated [`config::CostModel`], so the experiment
//! harness reproduces the paper's time measurements in shape.

#![warn(missing_docs)]

pub mod config;
pub mod experiment;
pub mod filters;
pub mod payload;
pub mod pipeline;
pub mod planner;
pub mod pool;
pub mod tiles;

mod parts;

pub use config::{Algorithm, AppConfig, ConfigError, CostModel, ExecutorKind, SharedConfig};
pub use experiment::{
    avg_elapsed_secs, clone_config, executor_for, lossless_options, reference_image, run_pipeline,
    run_pipeline_exec, run_pipeline_faulted, run_pipeline_faulted_exec, run_pipeline_uows,
    run_timesteps, MultiUowResult, PipelineResult,
};
pub use filters::{
    ExtractFilter, ExtractRasterFilter, ImageSlot, MergeFilter, PartitionedReadExtractFilter,
    RasterFilter, ReadExtractFilter, ReadExtractRasterFilter, ReadFilter, TileMergeFilter,
    TiledRasterFilter,
};
pub use payload::{ChunkPayload, RaOut, TriBatch};
pub use pipeline::{build_pipeline, try_build_pipeline, Grouping, Pipeline, PipelineSpec};
pub use planner::{estimate_work, plan, Plan, WorkEstimate};
pub use pool::{BufferPool, PoolVec};
pub use tiles::TileSplitter;
