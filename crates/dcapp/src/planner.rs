//! Automatic configuration: choosing the filter grouping, compute
//! placement, transparent-copy counts, and writer policy for a given
//! cluster and dataset.
//!
//! The paper leaves these three decisions to the application developer and
//! notes (footnote 1) that the authors "are in the process of examining
//! various mechanisms to automate some of these steps". This module is
//! that mechanism: it probes the dataset to estimate per-stage work and
//! stream volumes, evaluates an analytic makespan model for each candidate
//! configuration, and returns the winner with a human-readable rationale.
//!
//! The model is deliberately coarse — it exists to make *qualitative*
//! choices (fuse or split? weight the big node? pay for acks?), which the
//! test suite validates against actual pipeline runs.

use datacutter::{Placement, WritePolicy};
use hetsim::{HostId, Topology};
use volume::ChunkId;

use crate::config::{Algorithm, SharedConfig};
use crate::pipeline::{Grouping, PipelineSpec};

/// Estimated per-unit-of-work totals, from probing the dataset.
#[derive(Debug, Clone, Copy)]
pub struct WorkEstimate {
    /// Cells to scan.
    pub cells: u64,
    /// Estimated triangles the isovalue produces.
    pub triangles: u64,
    /// Estimated pixels generated at the configured image size.
    pub pixels: u64,
    /// Total chunk bytes retrieved.
    pub chunk_bytes: u64,
    /// Total triangle bytes on the extract→raster stream.
    pub tri_bytes: u64,
}

/// How many chunks the probe extracts (spread across the id range).
///
/// Triangle density is spatially clustered (plumes), so a sparse strided
/// sample has high variance: 6 probes landed ~4x over the true count on
/// some seeds. 16 keeps the probe cheap (~12% of the dataset) while
/// bounding the scaling error well inside the model's 3x tolerance.
const PROBE_CHUNKS: u32 = 16;

/// Probe the dataset: extract a few representative chunks and scale.
pub fn estimate_work(cfg: &SharedConfig) -> WorkEstimate {
    let selected: Vec<ChunkId> = {
        let mut v: Vec<ChunkId> = cfg.selected_chunks().iter().copied().collect();
        v.sort_unstable();
        v
    };
    let n = selected.len() as u64;
    if n == 0 {
        return WorkEstimate {
            cells: 0,
            triangles: 0,
            pixels: 0,
            chunk_bytes: 0,
            tri_bytes: 0,
        };
    }
    let stride = (n as usize / PROBE_CHUNKS as usize).max(1);
    let mut probe_tris = 0u64;
    let mut probe_pixels = 0u64;
    let mut probed = 0u64;
    let proj = cfg.camera.projector();
    let (w, h) = (cfg.camera.width, cfg.camera.height);
    for &chunk in selected.iter().step_by(stride) {
        let info = cfg.dataset.chunk_info(chunk);
        let grid = cfg.dataset.read_chunk(cfg.species, cfg.timestep, chunk);
        let mut tris = Vec::new();
        let stats = isosurf::extract(&grid, info.cell_origin, cfg.iso, &mut tris);
        let _ = stats.cells;
        probe_tris += tris.len() as u64;
        for t in &tris {
            if let Some(p) =
                isosurf::raster_triangle(&proj, w, h, &cfg.material, t, |_, _, _, _| {})
            {
                probe_pixels += p;
            }
        }
        probed += 1;
    }
    let scale = n as f64 / probed.max(1) as f64;
    let cells: u64 = selected
        .iter()
        .map(|&c| {
            let e = cfg.dataset.chunk_info(c).cell_extent;
            e.0 as u64 * e.1 as u64 * e.2 as u64
        })
        .sum();
    let chunk_bytes: u64 = selected.iter().map(|&c| cfg.dataset.chunk_bytes(c)).sum();
    let triangles = (probe_tris as f64 * scale) as u64;
    WorkEstimate {
        cells,
        triangles,
        pixels: (probe_pixels as f64 * scale) as u64,
        chunk_bytes,
        tri_bytes: triangles * isosurf::TRIANGLE_WIRE_BYTES,
        // probe_cells unused beyond scaling sanity; cells computed exactly.
    }
}

/// A planned configuration with the model's reasoning.
pub struct Plan {
    /// The chosen pipeline.
    pub spec: PipelineSpec,
    /// Estimated makespan (model seconds) of the chosen configuration.
    pub estimate_secs: f64,
    /// All evaluated candidates: `(label, estimated seconds)`.
    pub candidates: Vec<(String, f64)>,
    /// Why the winner won.
    pub rationale: String,
}

/// Effective compute capacity of `host` in reference-cores (cores × speed,
/// derated by background jobs).
fn capacity(topo: &Topology, host: HostId) -> f64 {
    let cpu = &topo.host(host).cpu;
    let cores = cpu.cores() as f64;
    let bg = cpu.bg_jobs() as f64;
    // Background jobs take their share of the cores.
    cpu.speed() * cores * (cores / (cores + bg)).min(1.0)
}

/// Seconds to move `bytes` from every storage host to the compute hosts,
/// approximated by the worst storage→compute path.
fn transfer_secs(topo: &Topology, from: &[HostId], to: &[HostId], bytes: u64) -> f64 {
    let mut worst = 0.0f64;
    for &f in from {
        for &t in to {
            worst = worst.max(topo.path_cost_per_byte(f, t));
        }
    }
    bytes as f64 * worst
}

/// Choose grouping, compute placement, copy counts, and policy for
/// rendering `cfg` on `topo`, with data on `cfg.storage_hosts` and
/// `compute_hosts` available for the raster stage (may overlap storage).
pub fn plan(topo: &Topology, cfg: &SharedConfig, compute_hosts: &[HostId]) -> Plan {
    assert!(!compute_hosts.is_empty());
    let est = estimate_work(cfg);
    let cost = &cfg.cost;
    let read_w = cost.read_cost(est.chunk_bytes).as_secs_f64();
    let extract_w = cost.extract_cost(est.cells, est.triangles).as_secs_f64();
    let raster_w = cost.raster_cost(est.triangles, est.pixels).as_secs_f64();

    let storage = &cfg.storage_hosts;
    let storage_cap: f64 = storage.iter().map(|&h| capacity(topo, h)).sum();
    // One raster copy per core on each compute host.
    let compute_placement = Placement {
        per_host: compute_hosts
            .iter()
            .map(|&h| (h, topo.host(h).cpu.cores()))
            .collect(),
    };
    let compute_cap: f64 = compute_hosts.iter().map(|&h| capacity(topo, h)).sum();

    // Disk time, overlapped with compute but a floor on the read stage.
    let disk_secs: f64 = {
        let per_node = est.chunk_bytes as f64 / storage.len() as f64;
        let bw = topo.host(storage[0]).disks[0].clone();
        let _ = bw;
        per_node / 25.0e6 // representative disk bandwidth
    };

    // Makespan models (coarse): pipeline stages overlap, so the makespan
    // is roughly the max stage time plus the data movement that cannot
    // hide behind it.
    let mut candidates: Vec<(String, Grouping, f64)> = Vec::new();

    // RERa-M: everything on the storage nodes, single-threaded per node.
    let rera_secs = {
        let per_node_cap: f64 = storage
            .iter()
            .map(|&h| {
                let cpu = &topo.host(h).cpu;
                let bg = cpu.bg_jobs() as f64;
                let cores = cpu.cores() as f64;
                cpu.speed() * (cores / (cores + bg)).min(1.0)
            })
            .fold(f64::INFINITY, f64::min);
        // One copy per node: per-node work limited by single-copy speed.
        let work = (read_w + extract_w + raster_w) / storage.len() as f64;
        (work / per_node_cap).max(disk_secs)
    };
    candidates.push(("RERa-M".into(), Grouping::RERaM, rera_secs));

    // RE-Ra-M: extract pinned to storage, raster spread over compute.
    let re_ra_secs = {
        let extract_secs = extract_w / storage_cap.max(1e-9);
        let raster_secs = raster_w / compute_cap.max(1e-9);
        let move_secs = transfer_secs(topo, storage, compute_hosts, est.tri_bytes);
        extract_secs.max(raster_secs).max(disk_secs) + move_secs.min(extract_secs + raster_secs)
    };
    candidates.push((
        "RE-Ra-M".into(),
        Grouping::RERaSplit {
            raster: compute_placement.clone(),
        },
        re_ra_secs,
    ));

    // R-ERa-M: both extract and raster on compute, chunks move.
    let r_era_secs = {
        let compute_secs = (extract_w + raster_w) / compute_cap.max(1e-9);
        let move_secs = transfer_secs(topo, storage, compute_hosts, est.chunk_bytes);
        compute_secs.max(disk_secs) + move_secs.min(compute_secs)
    };
    candidates.push((
        "R-ERa-M".into(),
        Grouping::REraSplit {
            era: compute_placement.clone(),
        },
        r_era_secs,
    ));

    let (label, mut grouping, secs) = candidates
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .map(|(l, g, s)| (l.clone(), g.clone(), *s))
        .expect("candidates non-empty");

    // Policy, per the paper's §6 guidance: demand driven wins "when the
    // bandwidth of the interconnect is reasonably high and the system load
    // dynamically changes"; acknowledgments are too expensive over a very
    // slow network; with static conditions and uneven copy counts the
    // zero-overhead weighted round robin suffices.
    let caps: Vec<f64> = compute_hosts.iter().map(|&h| capacity(topo, h)).collect();
    let cap_min = caps.iter().cloned().fold(f64::INFINITY, f64::min);
    let cap_max = caps.iter().cloned().fold(0.0f64, f64::max);
    let heterogeneous = cap_max > cap_min * 1.3;
    let dynamic_load = compute_hosts
        .iter()
        .chain(storage.iter())
        .any(|&h| topo.host(h).cpu.bg_jobs() > 0);
    let slowest_path = storage
        .iter()
        .flat_map(|&f| {
            compute_hosts
                .iter()
                .map(move |&t| topo.path_cost_per_byte(f, t))
        })
        .fold(0.0f64, f64::max);
    let very_slow_network = slowest_path > 1.0 / 5.0e6; // < 5 MB/s
    let uneven_copies = {
        let c: Vec<u32> = compute_placement.per_host.iter().map(|&(_, n)| n).collect();
        c.iter().max() != c.iter().min()
    };
    let policy = if dynamic_load && !very_slow_network {
        WritePolicy::demand_driven()
    } else if uneven_copies {
        WritePolicy::WeightedRoundRobin
    } else if heterogeneous && !very_slow_network {
        WritePolicy::demand_driven()
    } else {
        WritePolicy::RoundRobin
    };

    // Merge goes to the most capable compute host.
    let merge_host = *compute_hosts
        .iter()
        .max_by(|&&a, &&b| capacity(topo, a).total_cmp(&capacity(topo, b)))
        .expect("non-empty");

    // Tile-composite upgrade: with a single merge copy every depth entry
    // funnels through one host, so once that fold is a material fraction
    // of the modeled makespan the merge stage serializes the graph. Split
    // it into a tile-owned merge group (one copy set per host, tiles
    // routed by tile-hash) when the config allows more than one merge
    // copy and there are hosts to spread over.
    let merge_secs = cost.merge_cost(est.pixels).as_secs_f64() / capacity(topo, merge_host);
    let mut tile_note = String::new();
    if cfg.merge_copies > 1 && compute_hosts.len() >= 2 && merge_secs > 0.25 * secs {
        if let Grouping::RERaSplit { raster } = &grouping {
            let mut by_cap = compute_hosts.to_vec();
            by_cap.sort_by(|&a, &b| capacity(topo, b).total_cmp(&capacity(topo, a)));
            by_cap.truncate(cfg.merge_copies);
            grouping = Grouping::TileComposite {
                raster: raster.clone(),
                merge: Placement::one_per_host(&by_cap),
            };
            tile_note = format!(
                "; merge fold ≈{merge_secs:.2}s would serialize — split into a \
                 tile-hash merge group over {} hosts",
                by_cap.len()
            );
        }
    }

    let rationale = format!(
        "est. work: read {read_w:.2}s extract {extract_w:.2}s raster {raster_w:.2}s; \
         volumes: chunks {:.1}MB tris {:.1}MB; chose {label} ({secs:.2}s model) with {} \
         ({} copies over {} hosts){}{tile_note}",
        est.chunk_bytes as f64 / 1e6,
        est.tri_bytes as f64 / 1e6,
        policy.label(),
        compute_placement.total_copies(),
        compute_hosts.len(),
        if heterogeneous {
            "; cluster is heterogeneous"
        } else {
            ""
        },
    );

    Plan {
        spec: PipelineSpec {
            grouping,
            algorithm: Algorithm::ActivePixel,
            policy,
            merge_host,
        },
        estimate_secs: secs,
        candidates: candidates.into_iter().map(|(l, _, s)| (l, s)).collect(),
        rationale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AppConfig;
    use hetsim::presets::{red_with_deathstar, rogue_blue_mix, rogue_cluster};
    use std::sync::Arc;
    use volume::{Dataset, Dims};

    fn dataset() -> Dataset {
        Dataset::generate(Dims::new(33, 33, 65), (4, 4, 8), 32, 5)
    }

    fn cfg_for(hosts: Vec<hetsim::HostId>, image: u32) -> SharedConfig {
        let mut c = AppConfig::new(dataset(), hosts, 2, image, image);
        c.iso = 0.5;
        Arc::new(c)
    }

    #[test]
    fn estimate_is_in_the_right_ballpark() {
        let (_, hosts) = rogue_cluster(2);
        let cfg = cfg_for(hosts, 256);
        let est = estimate_work(&cfg);
        // Exact triangle count for comparison.
        let field = cfg.dataset.field(0, 0);
        let mut tris = Vec::new();
        isosurf::extract(&field, (0, 0, 0), cfg.iso, &mut tris);
        let exact = tris.len() as u64;
        assert!(
            est.triangles > exact / 3 && est.triangles < exact * 3,
            "estimate {} vs exact {exact}",
            est.triangles
        );
        assert_eq!(est.cells, cfg.dataset.layout().grid.cells());
        assert!(est.chunk_bytes > 0 && est.pixels > 0);
    }

    #[test]
    fn planner_picks_dd_on_heterogeneous_fast_network() {
        let (topo, rogues, blues) = rogue_blue_mix(2);
        // Load the rogues so capacities diverge.
        for &h in &rogues {
            topo.host(h).cpu.set_bg_jobs(8);
        }
        let mut hosts = rogues.clone();
        hosts.extend(&blues);
        let cfg = cfg_for(hosts.clone(), 256);
        let plan = plan(&topo, &cfg, &hosts);
        assert_eq!(plan.spec.policy.label(), "DD", "{}", plan.rationale);
    }

    #[test]
    fn planner_avoids_dd_on_slow_network_with_weighted_copies() {
        let (topo, reds, ds) = red_with_deathstar(2);
        let cfg = cfg_for(reds.clone(), 256);
        let mut compute = reds.clone();
        compute.push(ds);
        let plan = plan(&topo, &cfg, &compute);
        // Deathstar is behind Fast Ethernet: acks are expensive; copies
        // are uneven (8 cores vs 2) so WRR is the call.
        assert_eq!(plan.spec.policy.label(), "WRR", "{}", plan.rationale);
    }

    #[test]
    fn planner_prefers_moving_little_data() {
        // Compute hosts identical to storage: RE-Ra-M or RERa-M should
        // beat R-ERa-M (chunks outweigh triangles here).
        let (topo, hosts) = rogue_cluster(4);
        let cfg = cfg_for(hosts.clone(), 256);
        let p = plan(&topo, &cfg, &hosts);
        assert_ne!(p.spec.grouping.label(), "R-ERa-M", "{}", p.rationale);
    }

    #[test]
    fn planner_upgrades_serializing_merge_to_tile_group() {
        let (topo, hosts) = rogue_cluster(4);
        let mut c = AppConfig::new(dataset(), hosts.clone(), 2, 128, 128);
        c.iso = 0.5;
        // Make the single-sink fold dominate the makespan model.
        c.cost.merge_per_entry = 1.0e-3;
        let cfg: SharedConfig = Arc::new(c);
        let p = plan(&topo, &cfg, &hosts);
        assert_eq!(p.spec.grouping.label(), "RE-Ra-Mt-A", "{}", p.rationale);
        if let Grouping::TileComposite { merge, .. } = &p.spec.grouping {
            assert_eq!(merge.per_host.len(), cfg.merge_copies);
        }
        let r = crate::run_pipeline(&topo, &cfg, &p.spec).unwrap();
        assert_eq!(r.image.diff_pixels(&crate::reference_image(&cfg)), 0);
    }

    #[test]
    fn planner_keeps_single_sink_when_merge_is_light() {
        // The default cost model's merge is cheap: no upgrade.
        let (topo, hosts) = rogue_cluster(4);
        let cfg = cfg_for(hosts.clone(), 256);
        let p = plan(&topo, &cfg, &hosts);
        assert_ne!(p.spec.grouping.label(), "RE-Ra-Mt-A", "{}", p.rationale);
    }

    #[test]
    fn planned_configuration_actually_runs_and_is_competitive() {
        let (topo, hosts) = rogue_cluster(4);
        let cfg = cfg_for(hosts.clone(), 256);
        let p = plan(&topo, &cfg, &hosts);
        let planned = crate::run_pipeline(&topo, &cfg, &p.spec).unwrap();
        assert_eq!(planned.image.diff_pixels(&crate::reference_image(&cfg)), 0);

        // Compare against a brute-force sweep of the standard choices: the
        // planner must land within 1.5x of the best.
        let mut best = f64::INFINITY;
        for grouping in [
            Grouping::RERaM,
            Grouping::RERaSplit {
                raster: Placement::one_per_host(&hosts),
            },
            Grouping::REraSplit {
                era: Placement::one_per_host(&hosts),
            },
        ] {
            for policy in [WritePolicy::RoundRobin, WritePolicy::demand_driven()] {
                let spec = PipelineSpec {
                    grouping: grouping.clone(),
                    algorithm: Algorithm::ActivePixel,
                    policy,
                    merge_host: hosts[0],
                };
                let r = crate::run_pipeline(&topo, &cfg, &spec).unwrap();
                best = best.min(r.elapsed.as_secs_f64());
            }
        }
        let planned_secs = planned.elapsed.as_secs_f64();
        assert!(
            planned_secs <= best * 1.5,
            "planned {planned_secs:.3}s vs best {best:.3}s — {}",
            p.rationale
        );
    }
}
