//! Tile math and the producer-side splitter for tile-owned compositing.
//!
//! The output image is partitioned into fixed **tiles** — full-width row
//! strips of `tile_rows` rows (the last tile may be shorter). Under the
//! tile-hash writer policy each merge copy set owns the tiles congruent to
//! its set index, so compositing parallelizes across disjoint screen
//! regions instead of across buffers. The [`TileSplitter`] runs inside the
//! raster filter and cuts every outgoing partial result at tile
//! boundaries, so each shipped fragment falls inside exactly one tile and
//! can be routed with [`FilterCtx::write_tile`](datacutter::FilterCtx::write_tile).
//!
//! All split buffers draw from per-copy [`BufferPool`]s, so after warm-up
//! splitting allocates nothing: consumers dropping a fragment recycle its
//! buffer back to the splitter that produced it.

use isosurf::WinningPixel;

use crate::payload::RaOut;
use crate::pool::BufferPool;

/// Rows per tile for a `tile_size` knob over an image of `height` rows,
/// clamped to `[1, height]`.
pub fn tile_rows(tile_size: u32, height: u32) -> u32 {
    tile_size.clamp(1, height.max(1))
}

/// Number of tiles covering `height` rows at `tile_rows` rows per tile.
pub fn n_tiles(height: u32, tile_rows: u32) -> u32 {
    height.div_ceil(tile_rows.max(1)).max(1)
}

/// The tile owning image row `y`.
pub fn tile_of_row(y: u32, tile_rows: u32) -> u32 {
    y / tile_rows.max(1)
}

/// Row range `[lo, hi)` of `tile` (the last tile is clipped to `height`).
pub fn tile_range(tile: u32, tile_rows: u32, height: u32) -> (u32, u32) {
    let lo = (tile * tile_rows).min(height);
    let hi = (lo + tile_rows).min(height);
    (lo, hi)
}

/// Cuts raster output at tile boundaries so every emitted fragment lies in
/// exactly one tile. Single-tile inputs pass through untouched (zero
/// copies); straddling inputs are sliced into pooled per-tile buffers and
/// the original is recycled to its producer on drop.
pub struct TileSplitter {
    tile_rows: u32,
    /// Per-tile WPA accumulation slots, reused across calls so a split
    /// performs no container allocation in steady state.
    slots: Vec<Option<crate::pool::PoolVec<WinningPixel>>>,
    wpool: BufferPool<WinningPixel>,
    dpool: BufferPool<f32>,
    cpool: BufferPool<[u8; 3]>,
}

impl TileSplitter {
    /// A splitter for `n_tiles` tiles of `tile_rows` rows each.
    pub fn new(tile_rows: u32, n_tiles: u32) -> Self {
        TileSplitter {
            tile_rows: tile_rows.max(1),
            slots: (0..n_tiles).map(|_| None).collect(),
            wpool: BufferPool::new(),
            dpool: BufferPool::new(),
            cpool: BufferPool::new(),
        }
    }

    /// Split `out` at tile boundaries, handing each fragment to
    /// `sink(tile, fragment)` in ascending tile order. Entry order within
    /// each tile is preserved, so re-merging the fragments reproduces the
    /// original contents exactly (the depth test is order-insensitive
    /// anyway, but determinism is cheap to keep).
    pub fn split(&mut self, out: RaOut, mut sink: impl FnMut(u32, RaOut)) {
        let tr = self.tile_rows;
        match out {
            RaOut::Band {
                y0,
                width,
                depth,
                color,
            } => {
                let rows = depth.len() as u32 / width.max(1);
                let first = tile_of_row(y0, tr);
                let last = tile_of_row(y0 + rows.saturating_sub(1), tr);
                if first == last {
                    sink(
                        first,
                        RaOut::Band {
                            y0,
                            width,
                            depth,
                            color,
                        },
                    );
                    return;
                }
                let mut y = y0;
                let end = y0 + rows;
                while y < end {
                    let tile = tile_of_row(y, tr);
                    let next = ((tile + 1) * tr).min(end);
                    let a = ((y - y0) * width) as usize;
                    let b = ((next - y0) * width) as usize;
                    let mut d = self.dpool.take(b - a);
                    d.buf_mut().extend_from_slice(&depth[a..b]);
                    let mut c = self.cpool.take(b - a);
                    c.buf_mut().extend_from_slice(&color[a..b]);
                    sink(
                        tile,
                        RaOut::Band {
                            y0: y,
                            width,
                            depth: d,
                            color: c,
                        },
                    );
                    y = next;
                }
            }
            RaOut::Wpa(batch) => {
                if batch.is_empty() {
                    return;
                }
                let first = tile_of_row(batch[0].y as u32, tr);
                if batch.iter().all(|wp| tile_of_row(wp.y as u32, tr) == first) {
                    sink(first, RaOut::Wpa(batch));
                    return;
                }
                let TileSplitter { slots, wpool, .. } = self;
                for wp in batch.iter() {
                    let t = tile_of_row(wp.y as u32, tr) as usize;
                    slots[t]
                        .get_or_insert_with(|| wpool.take(batch.len()))
                        .buf_mut()
                        .push(*wp);
                }
                for (t, slot) in slots.iter_mut().enumerate() {
                    if let Some(part) = slot.take() {
                        sink(t as u32, RaOut::Wpa(part));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_math_covers_every_row_once() {
        for (h, ts) in [(96u32, 16u32), (97, 16), (5, 7), (1, 1), (100, 33)] {
            let tr = tile_rows(ts, h);
            let n = n_tiles(h, tr);
            let mut covered = 0u32;
            for t in 0..n {
                let (lo, hi) = tile_range(t, tr, h);
                assert!(lo < hi, "h={h} ts={ts} tile {t} is empty");
                assert_eq!(lo, covered, "h={h} ts={ts} tile {t} leaves a gap");
                for y in lo..hi {
                    assert_eq!(tile_of_row(y, tr), t);
                }
                covered = hi;
            }
            assert_eq!(covered, h, "h={h} ts={ts} tiles don't cover the image");
        }
    }

    #[test]
    fn single_tile_band_passes_through() {
        let mut s = TileSplitter::new(8, 4);
        let mut got = Vec::new();
        s.split(
            RaOut::Band {
                y0: 8,
                width: 4,
                depth: vec![1.0; 8].into(),
                color: vec![[1; 3]; 8].into(),
            },
            |t, r| got.push((t, r.merge_entries())),
        );
        assert_eq!(got, vec![(1, 8)]);
    }

    #[test]
    fn straddling_band_splits_at_boundaries() {
        // 6 rows starting at y=6 over 4-row tiles: rows 6-7 (tile 1),
        // 8-11 (tile 2).
        let mut s = TileSplitter::new(4, 3);
        let depth: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let color: Vec<[u8; 3]> = (0..12).map(|i| [i as u8; 3]).collect();
        let mut got = Vec::new();
        s.split(
            RaOut::Band {
                y0: 6,
                width: 2,
                depth: depth.into(),
                color: color.into(),
            },
            |t, r| {
                if let RaOut::Band { y0, depth, .. } = r {
                    got.push((t, y0, depth.to_vec()));
                }
            },
        );
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (1, 6, vec![0.0, 1.0, 2.0, 3.0]));
        assert_eq!(
            got[1],
            (2, 8, vec![4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0])
        );
    }

    #[test]
    fn straddling_wpa_splits_preserving_order() {
        let wp = |y: u16, d: f32| WinningPixel {
            x: 0,
            y,
            depth: d,
            rgb: [0; 3],
        };
        let mut s = TileSplitter::new(4, 3);
        let batch = vec![wp(9, 1.0), wp(1, 2.0), wp(2, 3.0), wp(11, 4.0)];
        let mut got = Vec::new();
        s.split(RaOut::Wpa(batch.into()), |t, r| {
            if let RaOut::Wpa(v) = r {
                got.push((t, v.iter().map(|w| w.depth).collect::<Vec<_>>()));
            }
        });
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (0, vec![2.0, 3.0]));
        assert_eq!(got[1], (2, vec![1.0, 4.0]));
    }

    #[test]
    fn splitting_recycles_buffers() {
        let mut s = TileSplitter::new(4, 3);
        for _ in 0..50 {
            let batch: Vec<WinningPixel> = (0..12)
                .map(|i| WinningPixel {
                    x: 0,
                    y: i as u16,
                    depth: 1.0,
                    rgb: [0; 3],
                })
                .collect();
            s.split(RaOut::Wpa(batch.into()), |_, r| drop(r));
        }
        assert!(
            s.wpool.allocated() <= 3,
            "steady-state WPA splitting must recycle ({} allocs)",
            s.wpool.allocated()
        );
    }
}
