//! # hetsim — deterministic heterogeneous-cluster emulation
//!
//! This crate is the substrate under the `datacutter` reproduction of
//! Beynon et al., *"Efficient Manipulation of Large Datasets on
//! Heterogeneous Storage Systems"* (IPDPS 2002). The paper's experiments
//! ran on four physical Linux clusters at the University of Maryland; this
//! crate replaces that hardware with a **discrete-event emulation**:
//!
//! * a [`Simulation`] engine with thread-backed cooperative processes and a
//!   deterministic virtual clock ([`engine`]),
//! * virtual-time channels and semaphores ([`sync`]),
//! * cost-charging resources — CPUs with processor-sharing contention and
//!   background load, FIFO disks, and network links ([`resources`]),
//! * cluster topologies with per-host NICs and inter-cluster backbones
//!   ([`topology`]), including presets for the paper's Red / Blue / Rogue /
//!   Deathstar testbed ([`presets`]).
//!
//! Application code (filters, schedulers) is ordinary imperative Rust that
//! runs on real threads; only *time* is virtual. Runs are bit-for-bit
//! reproducible: events are ordered by `(virtual time, sequence number)`
//! and exactly one process executes at any instant.

#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod load;
pub mod presets;
pub mod resources;
pub mod sync;
pub mod time;
pub mod topology;
pub mod trace;

pub use engine::{Env, ProcessId, RunStats, SimError, Simulation, Waker};
pub use fault::{DiskFaultKind, FaultPlan};
pub use load::{drive_load, spawn_load_generator, LoadProfile};
pub use resources::{Cpu, Disk, Link};
pub use sync::{channel, Barrier, DeadlineRecv, Receiver, Semaphore, SendError, Sender};
pub use time::{SimDuration, SimTime};
pub use topology::{
    ClusterId, ClusterSpec, Host, HostId, HostSpec, HostUtilization, Topology, TopologyBuilder,
};
pub use trace::{Span, Trace};
