//! Virtual-time synchronization primitives: counting semaphore and bounded
//! channel.
//!
//! Because execution in the engine is cooperative (exactly one process runs
//! at a time), primitive state only needs a plain mutex for `Send`/`Sync`
//! purposes — there is never lock contention, and compound check-then-block
//! sequences are atomic with respect to other processes.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{Env, ProcessId, Waker};
use crate::time::SimTime;

/// A counting semaphore on the virtual clock.
///
/// `acquire` blocks the calling process in virtual time until a permit is
/// available. Wakeups are barging (a process acquiring concurrently with a
/// release may take the permit before the woken waiter re-checks); in a
/// deterministic simulation this is benign and keeps the implementation
/// simple.
#[derive(Clone)]
pub struct Semaphore {
    inner: Arc<Mutex<SemState>>,
}

struct SemState {
    permits: u64,
    waiters: VecDeque<ProcessId>,
}

impl Semaphore {
    /// Create a semaphore holding `permits` permits.
    pub fn new(permits: u64) -> Self {
        Semaphore {
            inner: Arc::new(Mutex::new(SemState {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Take one permit, blocking in virtual time until available.
    pub fn acquire(&self, env: &Env) {
        loop {
            {
                let mut st = self.inner.lock();
                if st.permits > 0 {
                    st.permits -= 1;
                    return;
                }
                st.waiters.push_back(env.pid());
            }
            env.block();
        }
    }

    /// Try to take a permit without blocking.
    pub fn try_acquire(&self) -> bool {
        let mut st = self.inner.lock();
        if st.permits > 0 {
            st.permits -= 1;
            true
        } else {
            false
        }
    }

    /// Return one permit, waking a waiter if any.
    pub fn release(&self, env: &Env) {
        let waiter = {
            let mut st = self.inner.lock();
            st.permits += 1;
            st.waiters.pop_front()
        };
        if let Some(pid) = waiter {
            env.wake(pid);
        }
    }

    /// Permits currently available (for assertions/metrics).
    pub fn available(&self) -> u64 {
        self.inner.lock().permits
    }
}

/// A cyclic barrier on the virtual clock: `wait` blocks until `n`
/// processes have arrived, then releases them all and resets for the next
/// round. Used by the DataCutter runtime to separate units of work.
#[derive(Clone)]
pub struct Barrier {
    inner: Arc<Mutex<BarrierState>>,
}

struct BarrierState {
    n: usize,
    arrived: usize,
    generation: u64,
    waiters: Vec<ProcessId>,
}

impl Barrier {
    /// A barrier for `n` participants (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "a barrier needs at least one participant");
        Barrier {
            inner: Arc::new(Mutex::new(BarrierState {
                n,
                arrived: 0,
                generation: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Arrive and wait for the rest of the round. Returns `true` for the
    /// last arriver (the one that released the round).
    pub fn wait(&self, env: &Env) -> bool {
        let my_generation = {
            let mut st = self.inner.lock();
            st.arrived += 1;
            if st.arrived == st.n {
                // Release the round.
                st.arrived = 0;
                st.generation += 1;
                let mut waiters = std::mem::take(&mut st.waiters);
                drop(st);
                for pid in waiters.drain(..) {
                    env.wake(pid);
                }
                // Donate the emptied vec back so the next round reuses
                // its capacity instead of reallocating.
                self.donate(waiters);
                return true;
            }
            st.waiters.push(env.pid());
            st.generation
        };
        loop {
            env.block();
            let st = self.inner.lock();
            if st.generation != my_generation {
                return false;
            }
            // Spurious wake (stale); re-register and keep waiting.
            drop(st);
            let mut st = self.inner.lock();
            if st.generation != my_generation {
                return false;
            }
            st.waiters.push(env.pid());
        }
    }

    /// Permanently withdraw one participant (a crashed filter copy, for
    /// example). If the remaining participants have all already arrived,
    /// the current round is released immediately. Panics if called on a
    /// barrier whose last participant would leave while others still wait.
    pub fn leave(&self, env: &Env) {
        let waiters = {
            let mut st = self.inner.lock();
            assert!(st.n >= 1, "leave on an empty barrier");
            st.n -= 1;
            if st.n > 0 && st.arrived == st.n {
                st.arrived = 0;
                st.generation += 1;
                std::mem::take(&mut st.waiters)
            } else {
                Vec::new()
            }
        };
        if !waiters.is_empty() {
            let mut waiters = waiters;
            for pid in waiters.drain(..) {
                env.wake(pid);
            }
            self.donate(waiters);
        }
    }

    /// Hand an emptied waiter vec back to the barrier for reuse, keeping
    /// the larger of the two buffers.
    fn donate(&self, empty: Vec<ProcessId>) {
        let mut st = self.inner.lock();
        if st.waiters.capacity() < empty.capacity() {
            let prev = std::mem::replace(&mut st.waiters, empty);
            st.waiters.extend(prev);
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.inner.lock().n
    }
}

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the unsent value back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Outcome of [`Receiver::recv_deadline`].
#[derive(Debug, PartialEq, Eq)]
pub enum DeadlineRecv<T> {
    /// An item arrived before the deadline.
    Item(T),
    /// The channel is empty and every sender has dropped.
    Closed,
    /// The deadline passed with the channel still empty but open.
    TimedOut,
}

struct ChanState<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receivers: usize,
    send_waiters: VecDeque<ProcessId>,
    recv_waiters: VecDeque<ProcessId>,
}

struct Chan<T> {
    state: Mutex<ChanState<T>>,
    waker: Waker,
}

/// Producer endpoint of a bounded virtual-time channel. Clonable; the
/// channel reports end-of-stream to receivers once the last sender drops.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Consumer endpoint of a bounded virtual-time channel. Clonable; multiple
/// receivers compete for items (work-sharing), which is exactly the
/// "copy set shares a single buffer queue" behaviour DataCutter needs.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Create a bounded channel with room for `capacity` queued items.
/// `capacity` must be at least 1.
pub fn channel<T: Send>(waker: Waker, capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity >= 1, "channel capacity must be >= 1");
    let chan = Arc::new(Chan {
        state: Mutex::new(ChanState {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            senders: 1,
            receivers: 1,
            send_waiters: VecDeque::new(),
            recv_waiters: VecDeque::new(),
        }),
        waker,
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T: Send> Sender<T> {
    /// Enqueue `value`, blocking in virtual time while the channel is full.
    /// Fails (returning the value) once all receivers have dropped.
    pub fn send(&self, env: &Env, value: T) -> Result<(), SendError<T>> {
        let mut slot = Some(value);
        loop {
            let wake_rx = {
                let mut st = self.chan.state.lock();
                if st.receivers == 0 {
                    return Err(SendError(slot.take().expect("value present")));
                }
                if st.queue.len() < st.capacity {
                    st.queue.push_back(slot.take().expect("value present"));
                    st.recv_waiters.pop_front()
                } else {
                    st.send_waiters.push_back(env.pid());
                    drop(st);
                    env.block();
                    continue;
                }
            };
            if let Some(pid) = wake_rx {
                env.wake(pid);
            }
            return Ok(());
        }
    }

    /// Number of queued items right now (for metrics).
    pub fn len(&self) -> usize {
        self.chan.state.lock().queue.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Send> Receiver<T> {
    /// Dequeue the next item, blocking in virtual time while the channel is
    /// empty. Returns `None` once the channel is empty *and* every sender
    /// has dropped.
    pub fn recv(&self, env: &Env) -> Option<T> {
        loop {
            let (item, wake_tx) = {
                let mut st = self.chan.state.lock();
                if let Some(v) = st.queue.pop_front() {
                    (Some(v), st.send_waiters.pop_front())
                } else if st.senders == 0 {
                    return None;
                } else {
                    st.recv_waiters.push_back(env.pid());
                    drop(st);
                    env.block();
                    continue;
                }
            };
            if let Some(pid) = wake_tx {
                env.wake(pid);
            }
            return item;
        }
    }

    /// Dequeue the next item, blocking at most until `deadline`. Used by
    /// fault-aware consumers that must periodically probe peer liveness
    /// instead of waiting forever on a stream a dead producer will never
    /// feed again.
    pub fn recv_deadline(&self, env: &Env, deadline: SimTime) -> DeadlineRecv<T> {
        loop {
            let (item, wake_tx) = {
                let mut st = self.chan.state.lock();
                if let Some(v) = st.queue.pop_front() {
                    (v, st.send_waiters.pop_front())
                } else if st.senders == 0 {
                    return DeadlineRecv::Closed;
                } else {
                    st.recv_waiters.push_back(env.pid());
                    drop(st);
                    let woken = env.block_until(deadline);
                    // On timeout our pid may still sit in `recv_waiters`;
                    // it must be removed, or a later send would burn its
                    // wake on us (a stale waiter) and strand a real one.
                    let mut st = self.chan.state.lock();
                    if let Some(pos) = st.recv_waiters.iter().position(|&p| p == env.pid()) {
                        st.recv_waiters.remove(pos);
                    }
                    if !woken && st.queue.is_empty() && st.senders > 0 {
                        return DeadlineRecv::TimedOut;
                    }
                    continue;
                }
            };
            if let Some(pid) = wake_tx {
                env.wake(pid);
            }
            return DeadlineRecv::Item(item);
        }
    }

    /// True once every sender has dropped (items may still be queued).
    pub fn is_closed(&self) -> bool {
        self.chan.state.lock().senders == 0
    }

    /// Closed *and* empty in one lock acquisition — nothing queued and
    /// nothing can arrive. Prefer this in polling loops over separate
    /// `is_closed() && is_empty()` probes.
    pub fn is_drained(&self) -> bool {
        let st = self.chan.state.lock();
        st.senders == 0 && st.queue.is_empty()
    }

    /// Dequeue without blocking. `Ok(None)` means "empty but open";
    /// `Err(())` means "empty and closed".
    #[allow(clippy::result_unit_err)] // closed-channel has no error payload
    pub fn try_recv(&self, env: &Env) -> Result<Option<T>, ()> {
        let (item, wake_tx) = {
            let mut st = self.chan.state.lock();
            if let Some(v) = st.queue.pop_front() {
                (Some(v), st.send_waiters.pop_front())
            } else if st.senders == 0 {
                return Err(());
            } else {
                return Ok(None);
            }
        };
        if let Some(pid) = wake_tx {
            env.wake(pid);
        }
        Ok(item)
    }

    /// Number of queued items right now (for metrics / DD policy probes).
    pub fn len(&self) -> usize {
        self.chan.state.lock().queue.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().senders += 1;
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().receivers += 1;
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let wake: VecDeque<ProcessId> = {
            let mut st = self.chan.state.lock();
            st.senders -= 1;
            if st.senders == 0 {
                std::mem::take(&mut st.recv_waiters)
            } else {
                VecDeque::new()
            }
        };
        for pid in wake {
            self.chan.waker.wake(pid);
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let wake: VecDeque<ProcessId> = {
            let mut st = self.chan.state.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                std::mem::take(&mut st.send_waiters)
            } else {
                VecDeque::new()
            }
        };
        for pid in wake {
            self.chan.waker.wake(pid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::time::SimDuration;

    #[test]
    fn semaphore_serializes_critical_section() {
        let mut sim = Simulation::new();
        let sem = Semaphore::new(1);
        let done: Arc<Mutex<Vec<(u64, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3u32 {
            let sem = sem.clone();
            let done = done.clone();
            sim.spawn(format!("w{i}"), move |env| {
                sem.acquire(&env);
                env.delay(SimDuration::from_millis(10));
                sem.release(&env);
                done.lock().push((env.now().as_nanos() / 1_000_000, i));
            });
        }
        sim.run().unwrap();
        let v = done.lock().clone();
        assert_eq!(
            v.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn semaphore_counting() {
        let mut sim = Simulation::new();
        let sem = Semaphore::new(2);
        let done: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4u32 {
            let sem = sem.clone();
            let done = done.clone();
            sim.spawn(format!("w{i}"), move |env| {
                sem.acquire(&env);
                env.delay(SimDuration::from_millis(5));
                sem.release(&env);
                done.lock().push(env.now().as_nanos() / 1_000_000);
            });
        }
        sim.run().unwrap();
        assert_eq!(*done.lock(), vec![5, 5, 10, 10]);
    }

    #[test]
    fn barrier_releases_all_at_last_arrival() {
        let mut sim = Simulation::new();
        let barrier = Barrier::new(3);
        let times: Arc<Mutex<Vec<(u32, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3u32 {
            let b = barrier.clone();
            let times = times.clone();
            sim.spawn(format!("p{i}"), move |env| {
                env.delay(SimDuration::from_millis(10 * (i as u64 + 1)));
                b.wait(&env);
                times.lock().push((i, env.now().as_nanos() / 1_000_000));
            });
        }
        sim.run().unwrap();
        let v = times.lock().clone();
        // Everyone resumes at the last arriver's time (30ms).
        assert!(v.iter().all(|&(_, t)| t == 30), "{v:?}");
    }

    #[test]
    fn barrier_is_cyclic() {
        let mut sim = Simulation::new();
        let barrier = Barrier::new(2);
        let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2u32 {
            let b = barrier.clone();
            let log = log.clone();
            sim.spawn(format!("p{i}"), move |env| {
                for round in 0..3u64 {
                    env.delay(SimDuration::from_millis((i as u64 + 1) * (round + 1)));
                    b.wait(&env);
                    if i == 0 {
                        log.lock().push(env.now().as_nanos() / 1_000_000);
                    }
                }
            });
        }
        sim.run().unwrap();
        // Rounds complete at the slower participant's cumulative times.
        assert_eq!(*log.lock(), vec![2, 6, 12]);
    }

    #[test]
    fn barrier_last_arriver_reports_true() {
        let mut sim = Simulation::new();
        let barrier = Barrier::new(2);
        let releasers: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2u32 {
            let b = barrier.clone();
            let releasers = releasers.clone();
            sim.spawn(format!("p{i}"), move |env| {
                env.delay(SimDuration::from_millis(if i == 0 { 5 } else { 1 }));
                if b.wait(&env) {
                    releasers.lock().push(i);
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(
            *releasers.lock(),
            vec![0],
            "the late arriver releases the round"
        );
    }

    #[test]
    fn single_participant_barrier_never_blocks() {
        let mut sim = Simulation::new();
        let barrier = Barrier::new(1);
        sim.spawn("solo", move |env| {
            for _ in 0..5 {
                assert!(barrier.wait(&env));
            }
        });
        sim.run().unwrap();
    }

    #[test]
    fn barrier_leave_releases_waiting_round() {
        let mut sim = Simulation::new();
        let barrier = Barrier::new(3);
        let released: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2u32 {
            let b = barrier.clone();
            let released = released.clone();
            sim.spawn(format!("p{i}"), move |env| {
                env.delay(SimDuration::from_millis(i as u64 + 1));
                b.wait(&env);
                released.lock().push(env.now().as_nanos() / 1_000_000);
            });
        }
        let b = barrier.clone();
        sim.spawn("deserter", move |env| {
            env.delay(SimDuration::from_millis(10));
            b.leave(&env); // both peers already arrived: round fires now
        });
        sim.run().unwrap();
        assert_eq!(*released.lock(), vec![10, 10]);
        assert_eq!(barrier.participants(), 2);
    }

    #[test]
    fn recv_deadline_times_out_then_delivers() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>(sim.waker(), 2);
        sim.spawn("slow-producer", move |env| {
            env.delay(SimDuration::from_millis(30));
            tx.send(&env, 7).unwrap();
            // tx drops: channel closes
        });
        let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let log2 = log.clone();
        sim.spawn("consumer", move |env| loop {
            let deadline = env.now() + SimDuration::from_millis(10);
            match rx.recv_deadline(&env, deadline) {
                DeadlineRecv::Item(v) => log2.lock().push(format!("item {v}")),
                DeadlineRecv::TimedOut => log2.lock().push("timeout".into()),
                DeadlineRecv::Closed => {
                    log2.lock().push("closed".into());
                    break;
                }
            }
        });
        sim.run().unwrap();
        assert_eq!(
            *log.lock(),
            vec!["timeout", "timeout", "item 7", "closed"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn recv_deadline_timeout_leaves_no_stale_waiter() {
        // After consumer A times out, a send must wake consumer B (a live
        // waiter), not be swallowed by A's stale registration.
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>(sim.waker(), 2);
        let rx_b = rx.clone();
        let got: Arc<Mutex<Vec<(char, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        let got_a = got.clone();
        sim.spawn("a", move |env| {
            let r = rx.recv_deadline(&env, env.now() + SimDuration::from_millis(1));
            assert_eq!(r, DeadlineRecv::TimedOut);
            // A never touches the channel again.
            env.delay(SimDuration::from_millis(100));
            let _ = &got_a;
        });
        let got_b = got.clone();
        sim.spawn("b", move |env| {
            env.delay(SimDuration::from_millis(2));
            if let Some(v) = rx_b.recv(&env) {
                got_b.lock().push(('b', v));
            }
        });
        sim.spawn("producer", move |env| {
            env.delay(SimDuration::from_millis(5));
            tx.send(&env, 42).unwrap();
        });
        sim.run().unwrap();
        assert_eq!(*got.lock(), vec![('b', 42)]);
    }

    #[test]
    fn channel_passes_items_in_order() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>(sim.waker(), 4);
        sim.spawn("producer", move |env| {
            for i in 0..10 {
                tx.send(&env, i).unwrap();
                env.delay(SimDuration::from_millis(1));
            }
        });
        let got: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        sim.spawn("consumer", move |env| {
            while let Some(v) = rx.recv(&env) {
                got2.lock().push(v);
            }
        });
        sim.run().unwrap();
        assert_eq!(*got.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>(sim.waker(), 1);
        let send_times: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let st = send_times.clone();
        sim.spawn("producer", move |env| {
            for i in 0..3 {
                tx.send(&env, i).unwrap();
                st.lock().push(env.now().as_nanos() / 1_000_000);
            }
        });
        sim.spawn("slow-consumer", move |env| {
            while let Some(_v) = rx.recv(&env) {
                env.delay(SimDuration::from_millis(10));
            }
        });
        sim.run().unwrap();
        // First send immediate; subsequent sends gated by consumption.
        let v = send_times.lock().clone();
        assert_eq!(v[0], 0);
        assert!(v[1] <= 10 && v[2] >= 10, "got {v:?}");
    }

    #[test]
    fn recv_returns_none_after_senders_drop() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>(sim.waker(), 2);
        sim.spawn("producer", move |env| {
            tx.send(&env, 42).unwrap();
            // tx dropped at scope end
        });
        let saw: Arc<Mutex<Vec<Option<u32>>>> = Arc::new(Mutex::new(Vec::new()));
        let saw2 = saw.clone();
        sim.spawn("consumer", move |env| {
            saw2.lock().push(rx.recv(&env));
            saw2.lock().push(rx.recv(&env));
        });
        sim.run().unwrap();
        assert_eq!(*saw.lock(), vec![Some(42), None]);
    }

    #[test]
    fn send_fails_when_receiver_gone() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>(sim.waker(), 1);
        sim.spawn("receiver", move |env| {
            let _ = rx.recv(&env);
            // rx dropped here
        });
        sim.spawn("producer", move |env| {
            tx.send(&env, 1).unwrap();
            env.delay(SimDuration::from_millis(1));
            assert_eq!(tx.send(&env, 2), Err(SendError(2)));
        });
        sim.run().unwrap();
    }

    #[test]
    fn multiple_receivers_share_work() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>(sim.waker(), 2);
        sim.spawn("producer", move |env| {
            for i in 0..20 {
                tx.send(&env, i).unwrap();
            }
        });
        let counts: Arc<Mutex<[u32; 2]>> = Arc::new(Mutex::new([0, 0]));
        for c in 0..2usize {
            let rx = rx.clone();
            let counts = counts.clone();
            sim.spawn(format!("consumer{c}"), move |env| {
                while let Some(_v) = rx.recv(&env) {
                    counts.lock()[c] += 1;
                    env.delay(SimDuration::from_millis(1));
                }
            });
        }
        drop(rx);
        sim.run().unwrap();
        let c = *counts.lock();
        assert_eq!(c[0] + c[1], 20);
        assert!(
            c[0] > 0 && c[1] > 0,
            "both consumers should get items: {c:?}"
        );
    }
}
