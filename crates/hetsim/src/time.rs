//! Virtual time for the discrete-event engine.
//!
//! All costs in the emulation (CPU work, disk transfers, network transfers)
//! are expressed as [`SimDuration`]s and accumulate on a per-simulation
//! [`SimTime`] clock. The representation is integer nanoseconds so that
//! event ordering is exact and runs are bit-for-bit reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Build from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Build from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Build from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Build from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Build from fractional seconds. Negative and non-finite values clamp
    /// to zero; values beyond the representable range clamp to the max.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Nanoseconds in this span.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scale by a non-negative float factor, saturating.
    pub fn mul_f64(self, f: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * f)
    }

    /// True when this span is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime(10);
        let b = SimTime(20);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(b - a, SimDuration(10));
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::INFINITY),
            SimDuration(u64::MAX)
        );
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2).mul_f64(0.25);
        assert_eq!(d.as_nanos(), 500_000_000);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime(1_500_000_000)), "1.500000s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250000s");
    }

    #[test]
    fn since_is_directional() {
        let a = SimTime(100);
        let b = SimTime(400);
        assert_eq!(b.since(a).as_nanos(), 300);
        assert_eq!(a.since(b), SimDuration::ZERO);
    }
}
