//! Deterministic discrete-event engine with thread-backed cooperative
//! processes.
//!
//! Each simulated entity (a DataCutter filter copy, a disk server, a
//! background-load generator, ...) runs as a real OS thread, but execution is
//! *cooperative*: at any instant exactly one thread — either the engine or a
//! single process — is running. A process advances virtual time by calling
//! [`Env::delay`], and blocks on synchronization primitives built from
//! [`Env::block`] / [`Env::wake`]. The engine orders wake-ups by
//! `(virtual time, sequence number)`, so runs are fully deterministic:
//! the same program produces the same event order and the same final clock
//! on every execution.
//!
//! This is the "process-interaction" simulation style (SimPy, CSIM): the
//! simulated code is ordinary imperative Rust that happens to sleep on a
//! virtual clock instead of the wall clock.
//!
//! # Example
//!
//! ```
//! use hetsim::{Simulation, SimDuration};
//!
//! let mut sim = Simulation::new();
//! sim.spawn("worker", |env| {
//!     env.delay(SimDuration::from_millis(10));
//!     assert_eq!(env.now().as_nanos(), 10_000_000);
//! });
//! let stats = sim.run().unwrap();
//! assert_eq!(stats.end_time.as_nanos(), 10_000_000);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::time::{SimDuration, SimTime};

/// Identifies a process within one [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub u32);

/// Monotonic counter distinguishing successive blocking episodes of one
/// process, so stale wake events are ignored.
type Epoch = u64;

/// Errors surfaced by [`Simulation::run`].
#[derive(Debug)]
pub enum SimError {
    /// The event queue drained while processes were still blocked. The
    /// payload lists the names of the stuck processes.
    Deadlock(Vec<String>),
    /// A process panicked; the payload carries the process name and, when
    /// available, the panic message.
    ProcessPanic {
        /// Name of the panicking process.
        process: String,
        /// Panic message, when it was a string payload.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(names) => {
                write!(
                    f,
                    "simulation deadlock; blocked processes: {}",
                    names.join(", ")
                )
            }
            SimError::ProcessPanic { process, message } => {
                write!(f, "process '{process}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Summary returned by a successful [`Simulation::run`].
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Virtual time when the last event was processed.
    pub end_time: SimTime,
    /// Number of wake events the engine dispatched.
    pub events: u64,
    /// Number of processes that ran to completion.
    pub processes: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Spawned; first wake not yet granted.
    Created,
    /// Currently executing (at most one process at a time).
    Running,
    /// Parked awaiting a wake event carrying this epoch.
    Blocked(Epoch),
    /// Ran to completion (or unwound).
    Finished,
    /// Told to unwind at the next blocking point.
    Cancelled,
}

struct Proc {
    name: String,
    status: Status,
    epoch: Epoch,
    cv: Arc<Condvar>,
}

#[derive(PartialEq, Eq)]
struct EventKey {
    time: SimTime,
    seq: u64,
    pid: ProcessId,
    epoch: Epoch,
}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Core {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<EventKey>>,
    procs: Vec<Proc>,
    running: Option<ProcessId>,
    live: usize,
    dispatched: u64,
    completed: u32,
    panic: Option<(String, String)>,
}

struct Shared {
    core: Mutex<Core>,
    engine_cv: Condvar,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// Sentinel panic payload used to unwind cancelled process threads without
/// tripping the global panic hook.
struct CancelToken;

/// Handle given to each process; all interaction with the virtual clock and
/// with other processes goes through it. Cheap to clone.
#[derive(Clone)]
pub struct Env {
    pid: ProcessId,
    shared: Arc<Shared>,
}

impl Env {
    /// The calling process's id.
    #[inline]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.core.lock().now
    }

    /// Advance this process's virtual clock by `d`, letting other
    /// processes run in the meantime. Robust against stray [`Env::wake`]
    /// calls: the full duration always elapses.
    pub fn delay(&self, d: SimDuration) {
        let target = {
            let core = self.shared.core.lock();
            core.now + d
        };
        loop {
            let mut core = self.shared.core.lock();
            if core.now >= target {
                return;
            }
            self.schedule_self(&mut core, target);
            self.yield_blocked(core);
        }
    }

    /// Yield to any other process scheduled at the current instant, then
    /// resume (still at the same virtual time).
    pub fn yield_now(&self) {
        let mut core = self.shared.core.lock();
        let at = core.now;
        self.schedule_self(&mut core, at);
        self.yield_blocked(core);
    }

    /// Park the calling process until some other process calls
    /// [`Env::wake`] for it. Building block for synchronization primitives;
    /// application code normally uses channels or semaphores instead.
    pub fn block(&self) {
        let core = self.shared.core.lock();
        self.yield_blocked(core);
    }

    /// Park the calling process until either another process wakes it or
    /// the virtual clock reaches `deadline`, whichever comes first. Unlike
    /// [`Env::delay`], a genuine wake resumes the process early. Returns
    /// `true` when the process was woken before the deadline and `false`
    /// when the deadline expired. Building block for timed waits
    /// (liveness probes, retransmit timers).
    pub fn block_until(&self, deadline: SimTime) -> bool {
        let mut core = self.shared.core.lock();
        let at = deadline.max(core.now);
        self.schedule_self(&mut core, at);
        self.yield_blocked(core);
        self.shared.core.lock().now < deadline
    }

    /// Schedule a wake event (at the current instant) for `pid` if it is
    /// blocked. Safe to call for a process that has already been woken by
    /// another path: stale wakes are ignored via epochs. Returns `true` when
    /// a wake was actually scheduled.
    pub fn wake(&self, pid: ProcessId) -> bool {
        let mut core = self.shared.core.lock();
        wake_in(&mut core, pid)
    }

    /// Spawn a child process. It becomes runnable at the current virtual
    /// time (after already-queued events at this instant).
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ProcessId
    where
        F: FnOnce(Env) + Send + 'static,
    {
        spawn_inner(&self.shared, name.into(), f)
    }

    /// A handle that can schedule wakes without being a process — used by
    /// `Drop` impls of synchronization primitives.
    pub fn waker(&self) -> Waker {
        Waker {
            shared: self.shared.clone(),
        }
    }

    // -- internals ---------------------------------------------------------

    fn schedule_self(&self, core: &mut Core, at: SimTime) {
        let seq = core.seq;
        core.seq += 1;
        let epoch = core.procs[self.pid.0 as usize].epoch;
        core.events.push(Reverse(EventKey {
            time: at,
            seq,
            pid: self.pid,
            epoch,
        }));
    }

    /// Mark self blocked, hand control to the engine, and wait to be granted
    /// the CPU again. Must be entered with the core lock held.
    fn yield_blocked(&self, mut core: parking_lot::MutexGuard<'_, Core>) {
        let idx = self.pid.0 as usize;
        let epoch = core.procs[idx].epoch;
        core.procs[idx].status = Status::Blocked(epoch);
        core.running = None;
        self.shared.engine_cv.notify_one();
        let cv = core.procs[idx].cv.clone();
        loop {
            match core.procs[idx].status {
                Status::Running => return,
                Status::Cancelled => {
                    drop(core);
                    resume_unwind(Box::new(CancelToken));
                }
                _ => cv.wait(&mut core),
            }
        }
    }
}

/// Schedules wake events from contexts that are not themselves processes
/// (e.g. `Drop` impls of channel endpoints held outside the simulation).
#[derive(Clone)]
pub struct Waker {
    shared: Arc<Shared>,
}

impl Waker {
    /// Wake `pid` at the current virtual instant if it is blocked.
    pub fn wake(&self, pid: ProcessId) -> bool {
        let mut core = self.shared.core.lock();
        wake_in(&mut core, pid)
    }
}

fn wake_in(core: &mut Core, pid: ProcessId) -> bool {
    let idx = pid.0 as usize;
    match core.procs[idx].status {
        Status::Blocked(epoch) => {
            let seq = core.seq;
            core.seq += 1;
            let time = core.now;
            core.events.push(Reverse(EventKey {
                time,
                seq,
                pid,
                epoch,
            }));
            true
        }
        _ => false,
    }
}

fn spawn_inner<F>(shared: &Arc<Shared>, name: String, f: F) -> ProcessId
where
    F: FnOnce(Env) + Send + 'static,
{
    let mut core = shared.core.lock();
    let pid = ProcessId(core.procs.len() as u32);
    let cv = Arc::new(Condvar::new());
    core.procs.push(Proc {
        name,
        status: Status::Created,
        epoch: 0,
        cv,
    });
    core.live += 1;
    // First wake, at the current instant.
    let seq = core.seq;
    core.seq += 1;
    let time = core.now;
    core.events.push(Reverse(EventKey {
        time,
        seq,
        pid,
        epoch: 0,
    }));
    drop(core);

    let env = Env {
        pid,
        shared: shared.clone(),
    };
    let shared2 = shared.clone();
    let handle = std::thread::Builder::new()
        .name(format!("hetsim-{}", pid.0))
        .spawn(move || {
            // Wait until the engine grants the first slice.
            {
                let mut core = shared2.core.lock();
                let idx = pid.0 as usize;
                let cv = core.procs[idx].cv.clone();
                loop {
                    match core.procs[idx].status {
                        Status::Running => break,
                        Status::Cancelled => {
                            finish(&shared2, &mut core, pid, None);
                            return;
                        }
                        _ => cv.wait(&mut core),
                    }
                }
            }
            let env2 = env.clone();
            let result = catch_unwind(AssertUnwindSafe(move || f(env2)));
            let mut core = shared2.core.lock();
            let panic_info = match result {
                Ok(()) => None,
                Err(payload) => {
                    if payload.downcast_ref::<CancelToken>().is_some() {
                        None
                    } else {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic payload>".to_string());
                        Some(msg)
                    }
                }
            };
            finish(&shared2, &mut core, pid, panic_info);
        })
        .expect("failed to spawn simulation process thread");

    // Engine joins these at teardown.
    shared.handles.lock().push(handle);
    pid
}

fn finish(shared: &Shared, core: &mut Core, pid: ProcessId, panic_info: Option<String>) {
    let idx = pid.0 as usize;
    if let Some(msg) = panic_info {
        let name = core.procs[idx].name.clone();
        core.panic.get_or_insert((name, msg));
    }
    if core.procs[idx].status != Status::Cancelled {
        core.completed += 1;
    }
    core.procs[idx].status = Status::Finished;
    core.live -= 1;
    if core.running == Some(pid) {
        core.running = None;
    }
    shared.engine_cv.notify_one();
}

/// The simulation: owns the event queue, the virtual clock, and all process
/// threads. Construct, spawn root processes, then [`run`](Simulation::run).
pub struct Simulation {
    shared: Arc<Shared>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Create an empty simulation with the clock at zero.
    pub fn new() -> Self {
        Simulation {
            shared: Arc::new(Shared {
                core: Mutex::new(Core {
                    now: SimTime::ZERO,
                    seq: 0,
                    events: BinaryHeap::new(),
                    procs: Vec::new(),
                    running: None,
                    live: 0,
                    dispatched: 0,
                    completed: 0,
                    panic: None,
                }),
                engine_cv: Condvar::new(),
                handles: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Spawn a root process. See [`Env::spawn`] for spawning from within a
    /// running process.
    pub fn spawn<F>(&mut self, name: impl Into<String>, f: F) -> ProcessId
    where
        F: FnOnce(Env) + Send + 'static,
    {
        spawn_inner(&self.shared, name.into(), f)
    }

    /// A [`Waker`] tied to this simulation, for constructing channels and
    /// other primitives before the run starts.
    pub fn waker(&self) -> Waker {
        Waker {
            shared: self.shared.clone(),
        }
    }

    /// Drive the simulation until every process has finished or the run
    /// fails (deadlock / process panic).
    pub fn run(&mut self) -> Result<RunStats, SimError> {
        self.run_inner(None)
    }

    /// Like [`run`](Simulation::run), but additionally sleeps on the wall
    /// clock so that `scale` wall-seconds pass per virtual second — useful
    /// for watching an emulation in "real time". `scale = 0.0` is
    /// equivalent to `run`.
    pub fn run_throttled(&mut self, scale: f64) -> Result<RunStats, SimError> {
        self.run_inner(Some(scale))
    }

    fn run_inner(&mut self, throttle: Option<f64>) -> Result<RunStats, SimError> {
        loop {
            let mut core = self.shared.core.lock();
            if let Some((process, message)) = core.panic.take() {
                drop(core);
                self.cancel_all();
                return Err(SimError::ProcessPanic { process, message });
            }
            let ev = loop {
                match core.events.pop() {
                    Some(Reverse(ev)) => {
                        // Skip stale wakes (process moved on or finished).
                        let p = &core.procs[ev.pid.0 as usize];
                        let fresh = match p.status {
                            Status::Blocked(epoch) => epoch == ev.epoch,
                            Status::Created => ev.epoch == 0,
                            _ => false,
                        };
                        if fresh {
                            break Some(ev);
                        }
                    }
                    None => break None,
                }
            };
            let Some(ev) = ev else {
                // Queue drained: success iff nobody is still blocked.
                if core.live == 0 {
                    return Ok(RunStats {
                        end_time: core.now,
                        events: core.dispatched,
                        processes: core.completed,
                    });
                }
                let blocked: Vec<String> = core
                    .procs
                    .iter()
                    .filter(|p| matches!(p.status, Status::Blocked(_) | Status::Created))
                    .map(|p| p.name.clone())
                    .collect();
                drop(core);
                self.cancel_all();
                return Err(SimError::Deadlock(blocked));
            };

            if let Some(scale) = throttle {
                let delta = ev.time - core.now;
                if !delta.is_zero() && scale > 0.0 {
                    let wall = delta.as_secs_f64() * scale;
                    drop(core);
                    std::thread::sleep(std::time::Duration::from_secs_f64(wall));
                    core = self.shared.core.lock();
                }
            }

            core.now = ev.time;
            core.dispatched += 1;
            let idx = ev.pid.0 as usize;
            core.procs[idx].status = Status::Running;
            core.procs[idx].epoch += 1;
            core.running = Some(ev.pid);
            core.procs[idx].cv.notify_one();
            // Wait for the granted process to block or finish.
            while core.running.is_some() && core.panic.is_none() {
                self.shared.engine_cv.wait(&mut core);
            }
        }
    }

    fn cancel_all(&self) {
        let mut core = self.shared.core.lock();
        for p in core.procs.iter_mut() {
            match p.status {
                Status::Finished => {}
                _ => {
                    p.status = Status::Cancelled;
                    p.cv.notify_one();
                }
            }
        }
        drop(core);
        let mut handles = self.shared.handles.lock();
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Current virtual time (mainly for assertions in tests).
    pub fn now(&self) -> SimTime {
        self.shared.core.lock().now
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        self.cancel_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_advances_clock() {
        let mut sim = Simulation::new();
        sim.spawn("p", |env| {
            assert_eq!(env.now(), SimTime::ZERO);
            env.delay(SimDuration::from_secs(3));
            assert_eq!(env.now().as_secs_f64(), 3.0);
        });
        let stats = sim.run().unwrap();
        assert_eq!(stats.end_time.as_secs_f64(), 3.0);
        assert_eq!(stats.processes, 1);
    }

    #[test]
    fn processes_interleave_in_time_order() {
        use std::sync::Mutex as StdMutex;
        let log: Arc<StdMutex<Vec<(u64, &'static str)>>> = Arc::new(StdMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        for (name, step) in [("a", 3u64), ("b", 5u64)] {
            let log = log.clone();
            sim.spawn(name, move |env| {
                for _ in 0..3 {
                    env.delay(SimDuration::from_millis(step));
                    log.lock()
                        .unwrap()
                        .push((env.now().as_nanos() / 1_000_000, name));
                }
            });
        }
        sim.run().unwrap();
        let got = log.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![(3, "a"), (5, "b"), (6, "a"), (9, "a"), (10, "b"), (15, "b")]
        );
    }

    #[test]
    fn spawn_from_within_process() {
        let mut sim = Simulation::new();
        sim.spawn("parent", |env| {
            env.delay(SimDuration::from_millis(1));
            env.spawn("child", |env| {
                assert_eq!(env.now().as_nanos(), 1_000_000);
                env.delay(SimDuration::from_millis(2));
            });
            env.delay(SimDuration::from_millis(5));
        });
        let stats = sim.run().unwrap();
        assert_eq!(stats.end_time.as_nanos(), 6_000_000);
        assert_eq!(stats.processes, 2);
    }

    #[test]
    fn block_and_wake_handshake() {
        let mut sim = Simulation::new();
        let mut pid_holder = None;
        let waiter = sim.spawn("waiter", |env| {
            env.block();
            assert_eq!(env.now().as_nanos(), 7_000_000);
        });
        pid_holder.replace(waiter);
        sim.spawn("waker", move |env| {
            env.delay(SimDuration::from_millis(7));
            assert!(env.wake(waiter));
        });
        sim.run().unwrap();
    }

    #[test]
    fn block_until_times_out_and_wakes_early() {
        let mut sim = Simulation::new();
        let sleeper = sim.spawn("sleeper", |env| {
            // No one wakes us: the deadline expires.
            let woken = env.block_until(SimTime::ZERO + SimDuration::from_millis(3));
            assert!(!woken);
            assert_eq!(env.now().as_nanos(), 3_000_000);
            // This time a peer wakes us well before the deadline.
            let woken = env.block_until(env.now() + SimDuration::from_secs(10));
            assert!(woken);
            assert_eq!(env.now().as_nanos(), 5_000_000);
        });
        sim.spawn("waker", move |env| {
            env.delay(SimDuration::from_millis(5));
            env.wake(sleeper);
        });
        let stats = sim.run().unwrap();
        // The stale 10s timeout event must not drag the clock forward.
        assert_eq!(stats.end_time.as_nanos(), 5_000_000);
    }

    #[test]
    fn deadlock_is_reported() {
        let mut sim = Simulation::new();
        sim.spawn("stuck", |env| {
            env.block();
        });
        match sim.run() {
            Err(SimError::Deadlock(names)) => assert_eq!(names, vec!["stuck".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn process_panic_is_reported() {
        let mut sim = Simulation::new();
        sim.spawn("bad", |_env| {
            panic!("boom");
        });
        match sim.run() {
            Err(SimError::ProcessPanic { process, message }) => {
                assert_eq!(process, "bad");
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn stale_wakes_are_ignored() {
        let mut sim = Simulation::new();
        let sleeper = sim.spawn("sleeper", |env| {
            // A stray wake mid-delay must not shorten the delay, and the
            // delay's own (now stale) wake event must not double-resume.
            env.delay(SimDuration::from_millis(2));
            env.delay(SimDuration::from_millis(2));
            assert_eq!(env.now().as_nanos(), 4_000_000);
        });
        sim.spawn("noisy", move |env| {
            env.delay(SimDuration::from_millis(1));
            env.wake(sleeper); // sleeper is mid-delay; wake arrives early
        });
        let stats = sim.run().unwrap();
        assert_eq!(stats.end_time.as_nanos(), 4_000_000);
    }

    #[test]
    fn yield_now_lets_peers_run() {
        use std::sync::Mutex as StdMutex;
        let log: Arc<StdMutex<Vec<&'static str>>> = Arc::new(StdMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let l1 = log.clone();
        sim.spawn("first", move |env| {
            l1.lock().unwrap().push("first-before");
            env.yield_now();
            l1.lock().unwrap().push("first-after");
        });
        let l2 = log.clone();
        sim.spawn("second", move |_env| {
            l2.lock().unwrap().push("second");
        });
        sim.run().unwrap();
        assert_eq!(
            *log.lock().unwrap(),
            vec!["first-before", "second", "first-after"]
        );
    }

    #[test]
    fn determinism_across_runs() {
        fn trace() -> Vec<(u64, u32)> {
            use std::sync::Mutex as StdMutex;
            let log: Arc<StdMutex<Vec<(u64, u32)>>> = Arc::new(StdMutex::new(Vec::new()));
            let mut sim = Simulation::new();
            for i in 0..8u32 {
                let log = log.clone();
                sim.spawn(format!("p{i}"), move |env| {
                    for k in 0..5u64 {
                        env.delay(SimDuration::from_nanos((i as u64 + 1) * 37 + k * 11));
                        log.lock().unwrap().push((env.now().as_nanos(), i));
                    }
                });
            }
            sim.run().unwrap();
            let v = log.lock().unwrap().clone();
            v
        }
        assert_eq!(trace(), trace());
    }

    #[test]
    fn drop_without_run_does_not_hang() {
        let mut sim = Simulation::new();
        sim.spawn("never-ran", |env| {
            env.delay(SimDuration::from_secs(1));
        });
        drop(sim); // must cancel and join cleanly
    }
}
