//! Deterministic discrete-event engine with thread-backed cooperative
//! processes.
//!
//! Each simulated entity (a DataCutter filter copy, a disk server, a
//! background-load generator, ...) runs as a real OS thread, but execution is
//! *cooperative*: at any instant exactly one thread — either the engine or a
//! single process — is running. A process advances virtual time by calling
//! [`Env::delay`], and blocks on synchronization primitives built from
//! [`Env::block`] / [`Env::wake`]. The engine orders wake-ups by
//! `(virtual time, sequence number)`, so runs are fully deterministic:
//! the same program produces the same event order and the same final clock
//! on every execution.
//!
//! This is the "process-interaction" simulation style (SimPy, CSIM): the
//! simulated code is ordinary imperative Rust that happens to sleep on a
//! virtual clock instead of the wall clock.
//!
//! # The fast data plane
//!
//! Two structural choices keep the per-event cost low without changing the
//! dispatch order by a single event:
//!
//! * **Slab event queue.** An event is a packed `u128` key —
//!   `(time: 64 | seq: 40 | slot: 24)` — ordered in a `BinaryHeap`, with
//!   the payload (`ProcessId`, epoch) in a free-listed slab indexed by the
//!   low slot bits. `seq` is strictly monotonic, so `(time, seq)` alone
//!   totally orders events and the slot bits can never influence the
//!   order. Events scheduled *at the current instant* (the dominant
//!   wake/spawn/yield pattern) bypass the heap entirely: their keys are
//!   pushed in increasing order, so a plain FIFO holds them sorted and the
//!   true global minimum is `min(heap top, FIFO front)` by full-key
//!   comparison.
//!
//! * **Direct handoff.** When a process blocks or finishes it dispatches
//!   the next event itself instead of waking a central engine thread: if
//!   the next event is its own (a plain `delay` with nothing intervening)
//!   it simply keeps running — zero context switches; if the event belongs
//!   to a peer it wakes that peer directly — one switch instead of the
//!   centralized two (proc → engine → proc). The engine thread only wakes
//!   for run termination (success, deadlock, panic). Dispatch runs the
//!   identical pop-min/skip-stale algorithm under the same lock, merely on
//!   a different thread, so runs stay bit-for-bit identical. Throttled
//!   runs ([`Simulation::run_throttled`]) keep the centralized loop, which
//!   is the natural place to sleep on the wall clock between events.
//!
//! # Example
//!
//! ```
//! use hetsim::{Simulation, SimDuration};
//!
//! let mut sim = Simulation::new();
//! sim.spawn("worker", |env| {
//!     env.delay(SimDuration::from_millis(10));
//!     assert_eq!(env.now().as_nanos(), 10_000_000);
//! });
//! let stats = sim.run().unwrap();
//! assert_eq!(stats.end_time.as_nanos(), 10_000_000);
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::time::{SimDuration, SimTime};

/// Identifies a process within one [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub u32);

/// Monotonic counter distinguishing successive blocking episodes of one
/// process, so stale wake events are ignored.
type Epoch = u64;

/// Errors surfaced by [`Simulation::run`].
#[derive(Debug)]
pub enum SimError {
    /// The event queue drained while processes were still blocked. The
    /// payload lists the names of the stuck processes.
    Deadlock(Vec<String>),
    /// A process panicked; the payload carries the process name and, when
    /// available, the panic message.
    ProcessPanic {
        /// Name of the panicking process.
        process: String,
        /// Panic message, when it was a string payload.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(names) => {
                write!(
                    f,
                    "simulation deadlock; blocked processes: {}",
                    names.join(", ")
                )
            }
            SimError::ProcessPanic { process, message } => {
                write!(f, "process '{process}' panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Summary returned by a successful [`Simulation::run`].
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Virtual time when the last event was processed.
    pub end_time: SimTime,
    /// Number of wake events the engine dispatched.
    pub events: u64,
    /// Number of processes that ran to completion.
    pub processes: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Spawned; first wake not yet granted.
    Created,
    /// Currently executing (at most one process at a time).
    Running,
    /// Parked awaiting a wake event carrying this epoch.
    Blocked(Epoch),
    /// Ran to completion (or unwound).
    Finished,
    /// Told to unwind at the next blocking point.
    Cancelled,
}

struct Proc {
    name: String,
    status: Status,
    epoch: Epoch,
    cv: Arc<Condvar>,
}

/// Slab payload of one scheduled event; the wake target and the blocking
/// episode it belongs to. Slots are recycled through a free list, so
/// steady-state scheduling allocates nothing.
#[derive(Clone, Copy)]
struct EventRec {
    pid: ProcessId,
    epoch: Epoch,
}

/// Bits of the packed event key holding the monotonic sequence number.
const SEQ_BITS: u32 = 40;
/// Bits of the packed event key holding the slab slot.
const SLOT_BITS: u32 = 24;

/// Pack `(time, seq, slot)` into an order-preserving `u128`: time in the
/// high 64 bits, seq below it, slot in the low bits. `seq` is strictly
/// monotonic across all events, so `(time, seq)` is already a total order
/// and the slot bits never decide a comparison.
#[inline]
fn pack_key(time: SimTime, seq: u64, slot: u32) -> u128 {
    debug_assert!(seq < 1 << SEQ_BITS, "event sequence overflow");
    debug_assert!(slot < 1 << SLOT_BITS, "event slab overflow");
    ((time.as_nanos() as u128) << (SEQ_BITS + SLOT_BITS))
        | ((seq as u128) << SLOT_BITS)
        | slot as u128
}

#[inline]
fn key_time(key: u128) -> SimTime {
    SimTime((key >> (SEQ_BITS + SLOT_BITS)) as u64)
}

#[inline]
fn key_slot(key: u128) -> u32 {
    (key & ((1 << SLOT_BITS) - 1)) as u32
}

struct Core {
    now: SimTime,
    seq: u64,
    /// Events strictly in the future (`time > now` at push time).
    heap: BinaryHeap<Reverse<u128>>,
    /// Events scheduled at the instant they were pushed (`time == now`).
    /// `now` is non-decreasing and `seq` strictly increasing, so keys are
    /// pushed in increasing order and the deque is always sorted: its
    /// front competes with the heap top for the global minimum.
    imm: VecDeque<u128>,
    /// Event payloads, indexed by the key's slot bits.
    slab: Vec<EventRec>,
    /// Recycled slab slots.
    free: Vec<u32>,
    procs: Vec<Proc>,
    running: Option<ProcessId>,
    live: usize,
    dispatched: u64,
    completed: u32,
    panic: Option<(String, String)>,
    /// Terminal outcome produced by whichever thread drained the queue;
    /// the engine thread collects it.
    result: Option<Result<RunStats, SimError>>,
    /// Sticky stop flag: no process may dispatch once set (panic observed,
    /// queue drained, or teardown begun).
    halted: bool,
    /// Throttled runs keep the classic engine-thread dispatch loop.
    centralized: bool,
}

impl Core {
    /// Schedule a wake for `pid`/`epoch` at `at` (which must be `>= now`).
    fn push_event(&mut self, at: SimTime, pid: ProcessId, epoch: Epoch) {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slab.push(EventRec { pid, epoch });
                (self.slab.len() - 1) as u32
            }
        };
        self.slab[slot as usize] = EventRec { pid, epoch };
        let key = pack_key(at, self.seq, slot);
        self.seq += 1;
        if at == self.now {
            self.imm.push_back(key);
        } else {
            debug_assert!(at > self.now, "event scheduled in the past");
            self.heap.push(Reverse(key));
        }
    }

    /// Pop the earliest event and recycle its slot. The comparison is on
    /// the full packed key, so interleavings of heap and immediate events
    /// at the same instant resolve by sequence number exactly as the
    /// single-heap engine did.
    fn pop_event(&mut self) -> Option<(u128, EventRec)> {
        let from_imm = match (self.imm.front(), self.heap.peek()) {
            (Some(&i), Some(&Reverse(h))) => i < h,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let key = if from_imm {
            self.imm.pop_front().expect("imm front just observed")
        } else {
            let Reverse(key) = self.heap.pop().expect("heap top just observed");
            key
        };
        let slot = key_slot(key);
        let rec = self.slab[slot as usize];
        self.free.push(slot);
        Some((key, rec))
    }

    /// Terminal statistics once the queue has drained.
    fn stats(&self) -> RunStats {
        RunStats {
            end_time: self.now,
            events: self.dispatched,
            processes: self.completed,
        }
    }

    /// Names of processes stuck at a deadlock.
    fn blocked_names(&self) -> Vec<String> {
        self.procs
            .iter()
            .filter(|p| matches!(p.status, Status::Blocked(_) | Status::Created))
            .map(|p| p.name.clone())
            .collect()
    }
}

struct Shared {
    core: Mutex<Core>,
    engine_cv: Condvar,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// Pop-and-grant the next fresh event: the single dispatch algorithm, run
/// by whichever thread reaches a dispatch point (a blocking process under
/// direct handoff, the engine thread in centralized mode). Returns `true`
/// when the granted process is `granting` itself — the caller keeps the
/// CPU with no context switch at all. When the queue drains, records the
/// terminal result and wakes the engine.
fn dispatch_next(shared: &Shared, core: &mut Core, granting: Option<ProcessId>) -> bool {
    loop {
        let Some((key, rec)) = core.pop_event() else {
            // Queue drained: success iff nobody is still blocked.
            core.result = Some(if core.live == 0 {
                Ok(core.stats())
            } else {
                Err(SimError::Deadlock(core.blocked_names()))
            });
            core.halted = true;
            shared.engine_cv.notify_one();
            return false;
        };
        // Skip stale wakes (process moved on or finished).
        let idx = rec.pid.0 as usize;
        let fresh = match core.procs[idx].status {
            Status::Blocked(epoch) => epoch == rec.epoch,
            Status::Created => rec.epoch == 0,
            _ => false,
        };
        if !fresh {
            continue;
        }
        core.now = key_time(key);
        core.dispatched += 1;
        core.procs[idx].status = Status::Running;
        core.procs[idx].epoch += 1;
        core.running = Some(rec.pid);
        if granting == Some(rec.pid) {
            return true;
        }
        core.procs[idx].cv.notify_one();
        return false;
    }
}

/// Sentinel panic payload used to unwind cancelled process threads without
/// tripping the global panic hook.
struct CancelToken;

/// Handle given to each process; all interaction with the virtual clock and
/// with other processes goes through it. Cheap to clone.
#[derive(Clone)]
pub struct Env {
    pid: ProcessId,
    shared: Arc<Shared>,
}

impl Env {
    /// The calling process's id.
    #[inline]
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.core.lock().now
    }

    /// Advance this process's virtual clock by `d`, letting other
    /// processes run in the meantime. Robust against stray [`Env::wake`]
    /// calls: the full duration always elapses.
    pub fn delay(&self, d: SimDuration) {
        let target = {
            let core = self.shared.core.lock();
            core.now + d
        };
        loop {
            let mut core = self.shared.core.lock();
            if core.now >= target {
                return;
            }
            self.schedule_self(&mut core, target);
            self.yield_blocked(core);
        }
    }

    /// Yield to any other process scheduled at the current instant, then
    /// resume (still at the same virtual time).
    pub fn yield_now(&self) {
        let mut core = self.shared.core.lock();
        let at = core.now;
        self.schedule_self(&mut core, at);
        self.yield_blocked(core);
    }

    /// Park the calling process until some other process calls
    /// [`Env::wake`] for it. Building block for synchronization primitives;
    /// application code normally uses channels or semaphores instead.
    pub fn block(&self) {
        let core = self.shared.core.lock();
        self.yield_blocked(core);
    }

    /// Park the calling process until either another process wakes it or
    /// the virtual clock reaches `deadline`, whichever comes first. Unlike
    /// [`Env::delay`], a genuine wake resumes the process early. Returns
    /// `true` when the process was woken before the deadline and `false`
    /// when the deadline expired. Building block for timed waits
    /// (liveness probes, retransmit timers).
    pub fn block_until(&self, deadline: SimTime) -> bool {
        let mut core = self.shared.core.lock();
        let at = deadline.max(core.now);
        self.schedule_self(&mut core, at);
        self.yield_blocked(core);
        self.shared.core.lock().now < deadline
    }

    /// Schedule a wake event (at the current instant) for `pid` if it is
    /// blocked. Safe to call for a process that has already been woken by
    /// another path: stale wakes are ignored via epochs. Returns `true` when
    /// a wake was actually scheduled.
    pub fn wake(&self, pid: ProcessId) -> bool {
        let mut core = self.shared.core.lock();
        wake_in(&mut core, pid)
    }

    /// Spawn a child process. It becomes runnable at the current virtual
    /// time (after already-queued events at this instant).
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> ProcessId
    where
        F: FnOnce(Env) + Send + 'static,
    {
        spawn_inner(&self.shared, name.into(), f)
    }

    /// A handle that can schedule wakes without being a process — used by
    /// `Drop` impls of synchronization primitives.
    pub fn waker(&self) -> Waker {
        Waker {
            shared: self.shared.clone(),
        }
    }

    // -- internals ---------------------------------------------------------

    fn schedule_self(&self, core: &mut Core, at: SimTime) {
        let epoch = core.procs[self.pid.0 as usize].epoch;
        core.push_event(at, self.pid, epoch);
    }

    /// Mark self blocked and hand control onward. Under direct handoff the
    /// calling process dispatches the next event itself: if that event is
    /// its own, it keeps running without parking; otherwise it wakes the
    /// target and parks. Must be entered with the core lock held.
    fn yield_blocked(&self, mut core: parking_lot::MutexGuard<'_, Core>) {
        let idx = self.pid.0 as usize;
        let epoch = core.procs[idx].epoch;
        core.procs[idx].status = Status::Blocked(epoch);
        core.running = None;
        if core.centralized || core.halted {
            self.shared.engine_cv.notify_one();
        } else if dispatch_next(&self.shared, &mut core, Some(self.pid)) {
            // Self-granted: the next event was this process's own wake.
            return;
        }
        let cv = core.procs[idx].cv.clone();
        loop {
            match core.procs[idx].status {
                Status::Running => return,
                Status::Cancelled => {
                    drop(core);
                    resume_unwind(Box::new(CancelToken));
                }
                _ => cv.wait(&mut core),
            }
        }
    }
}

/// Schedules wake events from contexts that are not themselves processes
/// (e.g. `Drop` impls of channel endpoints held outside the simulation).
#[derive(Clone)]
pub struct Waker {
    shared: Arc<Shared>,
}

impl Waker {
    /// Wake `pid` at the current virtual instant if it is blocked.
    pub fn wake(&self, pid: ProcessId) -> bool {
        let mut core = self.shared.core.lock();
        wake_in(&mut core, pid)
    }
}

fn wake_in(core: &mut Core, pid: ProcessId) -> bool {
    let idx = pid.0 as usize;
    match core.procs[idx].status {
        Status::Blocked(epoch) => {
            let time = core.now;
            core.push_event(time, pid, epoch);
            true
        }
        _ => false,
    }
}

fn spawn_inner<F>(shared: &Arc<Shared>, name: String, f: F) -> ProcessId
where
    F: FnOnce(Env) + Send + 'static,
{
    let mut core = shared.core.lock();
    let pid = ProcessId(core.procs.len() as u32);
    let cv = Arc::new(Condvar::new());
    core.procs.push(Proc {
        name,
        status: Status::Created,
        epoch: 0,
        cv,
    });
    core.live += 1;
    // First wake, at the current instant.
    let time = core.now;
    core.push_event(time, pid, 0);
    drop(core);

    let env = Env {
        pid,
        shared: shared.clone(),
    };
    let shared2 = shared.clone();
    let handle = std::thread::Builder::new()
        .name(format!("hetsim-{}", pid.0))
        .spawn(move || {
            // Wait until the engine grants the first slice.
            {
                let mut core = shared2.core.lock();
                let idx = pid.0 as usize;
                let cv = core.procs[idx].cv.clone();
                loop {
                    match core.procs[idx].status {
                        Status::Running => break,
                        Status::Cancelled => {
                            finish(&shared2, &mut core, pid, None);
                            return;
                        }
                        _ => cv.wait(&mut core),
                    }
                }
            }
            let env2 = env.clone();
            let result = catch_unwind(AssertUnwindSafe(move || f(env2)));
            let mut core = shared2.core.lock();
            let panic_info = match result {
                Ok(()) => None,
                Err(payload) => {
                    if payload.downcast_ref::<CancelToken>().is_some() {
                        None
                    } else {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic payload>".to_string());
                        Some(msg)
                    }
                }
            };
            finish(&shared2, &mut core, pid, panic_info);
        })
        .expect("failed to spawn simulation process thread");

    // Engine joins these at teardown.
    shared.handles.lock().push(handle);
    pid
}

fn finish(shared: &Shared, core: &mut Core, pid: ProcessId, panic_info: Option<String>) {
    let idx = pid.0 as usize;
    if let Some(msg) = panic_info {
        let name = core.procs[idx].name.clone();
        core.panic.get_or_insert((name, msg));
        core.halted = true;
    }
    if core.procs[idx].status != Status::Cancelled {
        core.completed += 1;
    }
    core.procs[idx].status = Status::Finished;
    core.live -= 1;
    if core.running == Some(pid) {
        core.running = None;
    }
    if core.centralized || core.halted {
        shared.engine_cv.notify_one();
    } else {
        // Direct handoff: the finishing process dispatches its successor
        // (never itself — it is `Finished`).
        dispatch_next(shared, core, None);
    }
}

/// The simulation: owns the event queue, the virtual clock, and all process
/// threads. Construct, spawn root processes, then [`run`](Simulation::run).
pub struct Simulation {
    shared: Arc<Shared>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Create an empty simulation with the clock at zero.
    pub fn new() -> Self {
        Simulation {
            shared: Arc::new(Shared {
                core: Mutex::new(Core {
                    now: SimTime::ZERO,
                    seq: 0,
                    heap: BinaryHeap::new(),
                    imm: VecDeque::new(),
                    slab: Vec::new(),
                    free: Vec::new(),
                    procs: Vec::new(),
                    running: None,
                    live: 0,
                    dispatched: 0,
                    completed: 0,
                    panic: None,
                    result: None,
                    halted: false,
                    centralized: false,
                }),
                engine_cv: Condvar::new(),
                handles: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Spawn a root process. See [`Env::spawn`] for spawning from within a
    /// running process.
    pub fn spawn<F>(&mut self, name: impl Into<String>, f: F) -> ProcessId
    where
        F: FnOnce(Env) + Send + 'static,
    {
        spawn_inner(&self.shared, name.into(), f)
    }

    /// A [`Waker`] tied to this simulation, for constructing channels and
    /// other primitives before the run starts.
    pub fn waker(&self) -> Waker {
        Waker {
            shared: self.shared.clone(),
        }
    }

    /// Drive the simulation until every process has finished or the run
    /// fails (deadlock / process panic).
    pub fn run(&mut self) -> Result<RunStats, SimError> {
        // Direct handoff: seed the first dispatch, then sleep until some
        // process thread reports the terminal outcome.
        let mut core = self.shared.core.lock();
        core.centralized = false;
        if core.panic.is_none() && core.result.is_none() {
            dispatch_next(&self.shared, &mut core, None);
        }
        loop {
            if let Some((process, message)) = core.panic.take() {
                drop(core);
                self.cancel_all();
                return Err(SimError::ProcessPanic { process, message });
            }
            if let Some(result) = core.result.take() {
                match result {
                    Ok(stats) => return Ok(stats),
                    Err(e) => {
                        drop(core);
                        self.cancel_all();
                        return Err(e);
                    }
                }
            }
            self.shared.engine_cv.wait(&mut core);
        }
    }

    /// Like [`run`](Simulation::run), but additionally sleeps on the wall
    /// clock so that `scale` wall-seconds pass per virtual second — useful
    /// for watching an emulation in "real time". `scale = 0.0` is
    /// equivalent to `run`.
    pub fn run_throttled(&mut self, scale: f64) -> Result<RunStats, SimError> {
        self.run_centralized(scale)
    }

    /// The classic engine-thread dispatch loop, retained for throttled
    /// runs: every event is granted from here, with an optional wall-clock
    /// sleep proportional to the virtual-time gap before it fires.
    fn run_centralized(&mut self, scale: f64) -> Result<RunStats, SimError> {
        self.shared.core.lock().centralized = true;
        loop {
            let mut core = self.shared.core.lock();
            if let Some((process, message)) = core.panic.take() {
                drop(core);
                self.cancel_all();
                return Err(SimError::ProcessPanic { process, message });
            }
            // Peek the next fresh event to learn its time (for the
            // throttle sleep) without perturbing dispatch: stale events
            // are skipped exactly as dispatch_next would.
            let next_time = loop {
                let peek = match (core.imm.front(), core.heap.peek()) {
                    (Some(&i), Some(&Reverse(h))) => Some(i.min(h)),
                    (Some(&i), None) => Some(i),
                    (None, Some(&Reverse(h))) => Some(h),
                    (None, None) => None,
                };
                let Some(key) = peek else { break None };
                let rec = core.slab[key_slot(key) as usize];
                let fresh = match core.procs[rec.pid.0 as usize].status {
                    Status::Blocked(epoch) => epoch == rec.epoch,
                    Status::Created => rec.epoch == 0,
                    _ => false,
                };
                if fresh {
                    break Some(key_time(key));
                }
                // Drop the stale event (recycles its slot).
                core.pop_event();
            };
            let Some(next_time) = next_time else {
                if core.live == 0 {
                    return Ok(core.stats());
                }
                let blocked = core.blocked_names();
                drop(core);
                self.cancel_all();
                return Err(SimError::Deadlock(blocked));
            };

            let delta = next_time - core.now;
            if !delta.is_zero() && scale > 0.0 {
                let wall = delta.as_secs_f64() * scale;
                drop(core);
                std::thread::sleep(std::time::Duration::from_secs_f64(wall));
                core = self.shared.core.lock();
            }

            dispatch_next(&self.shared, &mut core, None);
            // Wait for the granted process to block or finish.
            while core.running.is_some() && core.panic.is_none() {
                self.shared.engine_cv.wait(&mut core);
            }
        }
    }

    fn cancel_all(&self) {
        let mut core = self.shared.core.lock();
        core.halted = true;
        for p in core.procs.iter_mut() {
            match p.status {
                Status::Finished => {}
                _ => {
                    p.status = Status::Cancelled;
                    p.cv.notify_one();
                }
            }
        }
        drop(core);
        let mut handles = self.shared.handles.lock();
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Current virtual time (mainly for assertions in tests).
    pub fn now(&self) -> SimTime {
        self.shared.core.lock().now
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        self.cancel_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_advances_clock() {
        let mut sim = Simulation::new();
        sim.spawn("p", |env| {
            assert_eq!(env.now(), SimTime::ZERO);
            env.delay(SimDuration::from_secs(3));
            assert_eq!(env.now().as_secs_f64(), 3.0);
        });
        let stats = sim.run().unwrap();
        assert_eq!(stats.end_time.as_secs_f64(), 3.0);
        assert_eq!(stats.processes, 1);
    }

    #[test]
    fn processes_interleave_in_time_order() {
        use std::sync::Mutex as StdMutex;
        let log: Arc<StdMutex<Vec<(u64, &'static str)>>> = Arc::new(StdMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        for (name, step) in [("a", 3u64), ("b", 5u64)] {
            let log = log.clone();
            sim.spawn(name, move |env| {
                for _ in 0..3 {
                    env.delay(SimDuration::from_millis(step));
                    log.lock()
                        .unwrap()
                        .push((env.now().as_nanos() / 1_000_000, name));
                }
            });
        }
        sim.run().unwrap();
        let got = log.lock().unwrap().clone();
        assert_eq!(
            got,
            vec![(3, "a"), (5, "b"), (6, "a"), (9, "a"), (10, "b"), (15, "b")]
        );
    }

    #[test]
    fn spawn_from_within_process() {
        let mut sim = Simulation::new();
        sim.spawn("parent", |env| {
            env.delay(SimDuration::from_millis(1));
            env.spawn("child", |env| {
                assert_eq!(env.now().as_nanos(), 1_000_000);
                env.delay(SimDuration::from_millis(2));
            });
            env.delay(SimDuration::from_millis(5));
        });
        let stats = sim.run().unwrap();
        assert_eq!(stats.end_time.as_nanos(), 6_000_000);
        assert_eq!(stats.processes, 2);
    }

    #[test]
    fn block_and_wake_handshake() {
        let mut sim = Simulation::new();
        let mut pid_holder = None;
        let waiter = sim.spawn("waiter", |env| {
            env.block();
            assert_eq!(env.now().as_nanos(), 7_000_000);
        });
        pid_holder.replace(waiter);
        sim.spawn("waker", move |env| {
            env.delay(SimDuration::from_millis(7));
            assert!(env.wake(waiter));
        });
        sim.run().unwrap();
    }

    #[test]
    fn block_until_times_out_and_wakes_early() {
        let mut sim = Simulation::new();
        let sleeper = sim.spawn("sleeper", |env| {
            // No one wakes us: the deadline expires.
            let woken = env.block_until(SimTime::ZERO + SimDuration::from_millis(3));
            assert!(!woken);
            assert_eq!(env.now().as_nanos(), 3_000_000);
            // This time a peer wakes us well before the deadline.
            let woken = env.block_until(env.now() + SimDuration::from_secs(10));
            assert!(woken);
            assert_eq!(env.now().as_nanos(), 5_000_000);
        });
        sim.spawn("waker", move |env| {
            env.delay(SimDuration::from_millis(5));
            env.wake(sleeper);
        });
        let stats = sim.run().unwrap();
        // The stale 10s timeout event must not drag the clock forward.
        assert_eq!(stats.end_time.as_nanos(), 5_000_000);
    }

    #[test]
    fn deadlock_is_reported() {
        let mut sim = Simulation::new();
        sim.spawn("stuck", |env| {
            env.block();
        });
        match sim.run() {
            Err(SimError::Deadlock(names)) => assert_eq!(names, vec!["stuck".to_string()]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn process_panic_is_reported() {
        let mut sim = Simulation::new();
        sim.spawn("bad", |_env| {
            panic!("boom");
        });
        match sim.run() {
            Err(SimError::ProcessPanic { process, message }) => {
                assert_eq!(process, "bad");
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn stale_wakes_are_ignored() {
        let mut sim = Simulation::new();
        let sleeper = sim.spawn("sleeper", |env| {
            // A stray wake mid-delay must not shorten the delay, and the
            // delay's own (now stale) wake event must not double-resume.
            env.delay(SimDuration::from_millis(2));
            env.delay(SimDuration::from_millis(2));
            assert_eq!(env.now().as_nanos(), 4_000_000);
        });
        sim.spawn("noisy", move |env| {
            env.delay(SimDuration::from_millis(1));
            env.wake(sleeper); // sleeper is mid-delay; wake arrives early
        });
        let stats = sim.run().unwrap();
        assert_eq!(stats.end_time.as_nanos(), 4_000_000);
    }

    #[test]
    fn yield_now_lets_peers_run() {
        use std::sync::Mutex as StdMutex;
        let log: Arc<StdMutex<Vec<&'static str>>> = Arc::new(StdMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let l1 = log.clone();
        sim.spawn("first", move |env| {
            l1.lock().unwrap().push("first-before");
            env.yield_now();
            l1.lock().unwrap().push("first-after");
        });
        let l2 = log.clone();
        sim.spawn("second", move |_env| {
            l2.lock().unwrap().push("second");
        });
        sim.run().unwrap();
        assert_eq!(
            *log.lock().unwrap(),
            vec!["first-before", "second", "first-after"]
        );
    }

    #[test]
    fn determinism_across_runs() {
        fn trace() -> Vec<(u64, u32)> {
            use std::sync::Mutex as StdMutex;
            let log: Arc<StdMutex<Vec<(u64, u32)>>> = Arc::new(StdMutex::new(Vec::new()));
            let mut sim = Simulation::new();
            for i in 0..8u32 {
                let log = log.clone();
                sim.spawn(format!("p{i}"), move |env| {
                    for k in 0..5u64 {
                        env.delay(SimDuration::from_nanos((i as u64 + 1) * 37 + k * 11));
                        log.lock().unwrap().push((env.now().as_nanos(), i));
                    }
                });
            }
            sim.run().unwrap();
            let v = log.lock().unwrap().clone();
            v
        }
        assert_eq!(trace(), trace());
    }

    #[test]
    fn drop_without_run_does_not_hang() {
        let mut sim = Simulation::new();
        sim.spawn("never-ran", |env| {
            env.delay(SimDuration::from_secs(1));
        });
        drop(sim); // must cancel and join cleanly
    }

    #[test]
    fn throttled_run_matches_untrottled_clock() {
        let run = |throttle: Option<f64>| {
            let mut sim = Simulation::new();
            for i in 0..4u32 {
                sim.spawn(format!("p{i}"), move |env| {
                    for k in 0..3u64 {
                        env.delay(SimDuration::from_micros((i as u64 + 1) * 7 + k));
                        env.yield_now();
                    }
                });
            }
            let stats = match throttle {
                Some(s) => sim.run_throttled(s).unwrap(),
                None => sim.run().unwrap(),
            };
            (stats.end_time.as_nanos(), stats.events, stats.processes)
        };
        // The centralized (throttled) loop and the direct-handoff path
        // dispatch the identical event sequence.
        assert_eq!(run(None), run(Some(0.0)));
    }

    #[test]
    fn event_slots_are_recycled() {
        let mut sim = Simulation::new();
        sim.spawn("looper", |env| {
            for _ in 0..10_000 {
                env.delay(SimDuration::from_nanos(5));
            }
        });
        sim.run().unwrap();
        // One process delaying in a loop needs only a couple of slots.
        assert!(sim.shared.core.lock().slab.len() < 8);
    }

    #[test]
    fn packed_keys_order_by_time_then_seq() {
        let a = pack_key(SimTime(5), 1, 0xFF_FFFF);
        let b = pack_key(SimTime(5), 2, 0);
        let c = pack_key(SimTime(6), 0, 7);
        assert!(a < b && b < c);
        assert_eq!(key_time(a), SimTime(5));
        assert_eq!(key_slot(a), 0xFF_FFFF);
        assert_eq!(key_slot(b), 0);
    }
}
