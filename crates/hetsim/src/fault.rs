//! Deterministic fault injection: a [`FaultPlan`] schedules host crashes,
//! transient host stalls, NIC degradation windows, seeded probabilistic
//! message drops — and, since the disks became load-bearing, **disk
//! faults**: throughput-degradation windows, seeded transient read/write
//! `io::Error` windows, and seeded read-corruption (bit-flip) windows.
//! All are expressed in **virtual time** so every fault replays
//! identically under the deterministic clock.
//!
//! The plan is a *pure oracle*: once built it is immutable, and every query
//! (`is_dead`, `stall_end`, `should_drop`, ...) is a pure function of the
//! plan and the current virtual time. Runtimes consult the oracle at their
//! own failure boundaries (a copy checks for its host's death before each
//! dequeue; a writer skips hosts whose death has become detectable), which
//! keeps the failure semantics deterministic and replayable: two runs with
//! the same plan observe exactly the same faults at exactly the same
//! virtual instants.
//!
//! Only NIC-degradation windows need active drivers (they flip link state
//! at their start and end times); [`FaultPlan::install`] spawns one short-
//! lived process per window and nothing else, so an installed plan never
//! keeps a simulation alive.
//!
//! ```
//! use hetsim::fault::FaultPlan;
//! use hetsim::{SimDuration, SimTime, HostId};
//!
//! let plan = FaultPlan::new()
//!     .crash_host(HostId(2), SimTime::ZERO + SimDuration::from_millis(50))
//!     .drop_messages(0xBEEF, 0.01);
//! assert!(!plan.is_dead(HostId(2), SimTime::ZERO));
//! assert!(plan.is_dead(HostId(2), SimTime::ZERO + SimDuration::from_millis(50)));
//! ```

use crate::engine::Simulation;
use crate::time::{SimDuration, SimTime};
use crate::topology::{HostId, Topology};

/// Which disk operations a seeded [`disk_error`](FaultPlan::disk_error)
/// window fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// Fail reads (spill fault-in, chunk fetches).
    Read,
    /// Fail writes (spill-out, ring growth).
    Write,
    /// Fail both directions.
    ReadWrite,
}

impl DiskFaultKind {
    /// True when a window of this kind covers an operation of `op` kind
    /// (`ReadWrite` windows cover everything).
    pub fn covers(self, op: DiskFaultKind) -> bool {
        self == DiskFaultKind::ReadWrite || self == op
    }

    fn label(self) -> &'static str {
        match self {
            DiskFaultKind::Read => "read",
            DiskFaultKind::Write => "write",
            DiskFaultKind::ReadWrite => "read/write",
        }
    }
}

/// A scheduled, immutable set of faults. Cheap to clone; build with the
/// chained constructors, then hand copies to the runtime and call
/// [`install`](FaultPlan::install) on the simulation.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    crashes: Vec<(HostId, SimTime)>,
    stalls: Vec<(HostId, SimTime, SimDuration)>,
    degrades: Vec<(HostId, SimTime, SimDuration, f64)>,
    disk_degrades: Vec<(HostId, SimTime, SimDuration, f64)>,
    disk_errors: Vec<(HostId, SimTime, SimDuration, f64, DiskFaultKind)>,
    corrupt_reads: Vec<(HostId, SimTime, SimDuration, f64)>,
    storage_seed: u64,
    drop_rate: f64,
    drop_seed: u64,
    delay_rate: f64,
    delay_seed: u64,
    delay_dur: SimDuration,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a fail-stop crash of `host` at virtual time `at`. Processes
    /// placed on the host observe the crash at their next failure boundary
    /// (runtime-defined; the DataCutter runtime uses stream-read edges).
    pub fn crash_host(mut self, host: HostId, at: SimTime) -> Self {
        self.crashes.push((host, at));
        self
    }

    /// Schedule a transient stall (freeze) of `host` for `dur` starting at
    /// `at`: compute and disk operations beginning inside the window are
    /// delayed to its end.
    pub fn stall_host(mut self, host: HostId, at: SimTime, dur: SimDuration) -> Self {
        self.stalls.push((host, at, dur));
        self
    }

    /// Degrade `host`'s NIC links (both directions) to `factor` of their
    /// configured bandwidth for `dur` starting at `at`.
    pub fn degrade_nic(mut self, host: HostId, at: SimTime, dur: SimDuration, factor: f64) -> Self {
        self.degrades.push((host, at, dur, factor));
        self
    }

    /// Drop each cross-host message independently with probability `rate`,
    /// decided by a hash seeded with `seed` — the same (stream, message,
    /// attempt) triple always gets the same verdict, so runs replay.
    pub fn drop_messages(mut self, seed: u64, rate: f64) -> Self {
        self.drop_seed = seed;
        self.drop_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Delay each cross-host message independently by `dur` with
    /// probability `rate`, decided by a hash seeded with `seed`. Like
    /// drops, the verdict is a pure function of the (stream, message) key,
    /// so the same messages are delayed on every substrate — the chaos
    /// layer's jitter injection stays replay-comparable sim-vs-native.
    pub fn delay_messages(mut self, seed: u64, rate: f64, dur: SimDuration) -> Self {
        self.delay_seed = seed;
        self.delay_rate = rate.clamp(0.0, 1.0);
        self.delay_dur = dur;
        self
    }

    /// Degrade `host`'s disk throughput to `factor` of its configured
    /// bandwidth for `dur` starting at `at`. A pure time-indexed query
    /// (no installed driver): the storage plane stretches the virtual
    /// disk time it charges inside the window.
    pub fn degrade_disk(
        mut self,
        host: HostId,
        at: SimTime,
        dur: SimDuration,
        factor: f64,
    ) -> Self {
        self.disk_degrades.push((host, at, dur, factor));
        self
    }

    /// Fail each disk operation of `kind` on `host` independently with
    /// probability `rate` inside the window `[at, at + dur)`, decided by
    /// a hash seeded with [`storage_seed`](FaultPlan::storage_seed) —
    /// identical (host, op, attempt) keys always get identical verdicts,
    /// so a retried operation re-rolls and runs replay.
    pub fn disk_error(
        mut self,
        host: HostId,
        at: SimTime,
        dur: SimDuration,
        rate: f64,
        kind: DiskFaultKind,
    ) -> Self {
        self.disk_errors
            .push((host, at, dur, rate.clamp(0.0, 1.0), kind));
        self
    }

    /// Corrupt each successful disk read on `host` independently with
    /// probability `rate` inside the window `[at, at + dur)`: the storage
    /// plane flips one seeded bit in the bytes it read, exercising the
    /// checksum-detection path.
    pub fn corrupt_read(mut self, host: HostId, at: SimTime, dur: SimDuration, rate: f64) -> Self {
        self.corrupt_reads
            .push((host, at, dur, rate.clamp(0.0, 1.0)));
        self
    }

    /// Seed for every storage verdict (`should_fail_disk`,
    /// `should_corrupt_read`, `corrupt_bit`). Defaults to 0; set it so
    /// distinct chaos runs roll distinct fault schedules.
    pub fn storage_seed(mut self, seed: u64) -> Self {
        self.storage_seed = seed;
        self
    }

    // -- queries -----------------------------------------------------------

    /// True when the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.stalls.is_empty()
            && self.degrades.is_empty()
            && !self.has_disk_faults()
            && self.drop_rate == 0.0
            && self.delay_rate == 0.0
    }

    /// True when at least one host crash is scheduled.
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty()
    }

    /// True when probabilistic message drops are enabled.
    pub fn has_drops(&self) -> bool {
        self.drop_rate > 0.0
    }

    /// True when probabilistic message delays are enabled.
    pub fn has_delays(&self) -> bool {
        self.delay_rate > 0.0
    }

    /// True when at least one NIC-degradation window is scheduled. These
    /// are the only faults that need the simulator's installed drivers
    /// (every other fault is a pure time-indexed query), so substrates
    /// without emulated NICs reject plans where this is true.
    pub fn has_degrades(&self) -> bool {
        !self.degrades.is_empty()
    }

    /// True when at least one disk-fault window (degrade, error, or
    /// corruption) is scheduled — the fast path the storage plane checks
    /// before keying any verdict.
    pub fn has_disk_faults(&self) -> bool {
        !self.disk_degrades.is_empty()
            || !self.disk_errors.is_empty()
            || !self.corrupt_reads.is_empty()
    }

    /// The (earliest) scheduled crash time of `host`, if any.
    pub fn host_death(&self, host: HostId) -> Option<SimTime> {
        self.crashes
            .iter()
            .filter(|&&(h, _)| h == host)
            .map(|&(_, at)| at)
            .min()
    }

    /// True once `host`'s scheduled crash time has been reached.
    pub fn is_dead(&self, host: HostId, now: SimTime) -> bool {
        self.host_death(host).is_some_and(|at| now >= at)
    }

    /// True once `host` has been dead for at least `timeout` — the point at
    /// which a remote failure detector based on an idle-timeout of that
    /// length may conclude the host is gone.
    pub fn detectably_dead(&self, host: HostId, now: SimTime, timeout: SimDuration) -> bool {
        self.host_death(host).is_some_and(|at| now >= at + timeout)
    }

    /// If `now` falls inside a stall window of `host`, the window's end.
    pub fn stall_end(&self, host: HostId, now: SimTime) -> Option<SimTime> {
        self.stalls
            .iter()
            .filter(|&&(h, at, dur)| h == host && now >= at && now < at + dur)
            .map(|&(_, at, dur)| at + dur)
            .max()
    }

    /// NIC-degradation factor applying to `host` at `now`: the strongest
    /// (smallest) factor among windows covering the instant, or `1.0`
    /// when none does. A pure time-indexed query — substrates without
    /// emulated NICs (the wall-clock executor) use it to translate a
    /// degradation window into equivalent per-message transfer delays
    /// instead of rejecting the plan.
    pub fn degrade_factor(&self, host: HostId, now: SimTime) -> f64 {
        self.degrades
            .iter()
            .filter(|&&(h, at, dur, _)| h == host && now >= at && now < at + dur)
            .map(|&(_, _, _, f)| f)
            .fold(1.0, f64::min)
    }

    /// Seeded drop verdict for one delivery attempt of one message. Keys
    /// are caller-chosen (stream id, sequence number, attempt counter);
    /// identical keys always produce identical verdicts.
    pub fn should_drop(&self, stream: u64, seq: u64, attempt: u64) -> bool {
        if self.drop_rate <= 0.0 {
            return false;
        }
        let h = splitmix64(
            self.drop_seed
                ^ splitmix64(stream.wrapping_add(0x9E37_79B9_7F4A_7C15))
                ^ splitmix64(
                    seq.wrapping_mul(0xBF58_476D_1CE4_E5B9)
                        .wrapping_add(attempt),
                ),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform in [0, 1)
        u < self.drop_rate
    }

    /// Seeded delay verdict for one message: the extra latency to inject
    /// before its (successful) transmission, or `None`. Keys are
    /// caller-chosen, identical keys always produce identical verdicts.
    pub fn message_delay(&self, stream: u64, seq: u64) -> Option<SimDuration> {
        if self.delay_rate <= 0.0 {
            return None;
        }
        let h = splitmix64(
            self.delay_seed
                ^ splitmix64(stream.wrapping_add(0xD1B5_4A32_D192_ED03))
                ^ splitmix64(seq.wrapping_mul(0x94D0_49BB_1331_11EB)),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        (u < self.delay_rate).then_some(self.delay_dur)
    }

    /// Disk-degradation factor applying to `host` at `now`: the strongest
    /// (smallest) factor among windows covering the instant, or `1.0` when
    /// none does. Like [`degrade_factor`](FaultPlan::degrade_factor) but
    /// for the host's disks; needs no installed driver on any substrate.
    pub fn disk_degrade_factor(&self, host: HostId, now: SimTime) -> f64 {
        self.disk_degrades
            .iter()
            .filter(|&&(h, at, dur, _)| h == host && now >= at && now < at + dur)
            .map(|&(_, _, _, f)| f)
            .fold(1.0, f64::min)
    }

    /// Seeded failure verdict for one attempt of one disk operation of
    /// `op_kind` on `host` at `now`. `op` is a caller-chosen operation
    /// sequence number; `attempt` re-rolls the verdict, so bounded retries
    /// against a transient-error window eventually succeed and replay
    /// identically. Overlapping windows roll independently — the op fails
    /// if any covering window says so.
    pub fn should_fail_disk(
        &self,
        host: HostId,
        op_kind: DiskFaultKind,
        now: SimTime,
        op: u64,
        attempt: u64,
    ) -> bool {
        self.disk_errors
            .iter()
            .enumerate()
            .filter(|&(_, &(h, at, dur, _, kind))| {
                h == host && kind.covers(op_kind) && now >= at && now < at + dur
            })
            .any(|(i, &(_, _, _, rate, _))| {
                self.storage_verdict(0xD15C_0E44, host, i as u64, op, attempt, rate)
            })
    }

    /// Seeded corruption verdict for one successful disk read on `host`
    /// at `now`: should the storage plane flip a bit in what it read?
    /// Keyed like [`should_fail_disk`](FaultPlan::should_fail_disk).
    pub fn should_corrupt_read(&self, host: HostId, now: SimTime, op: u64, attempt: u64) -> bool {
        self.corrupt_reads
            .iter()
            .enumerate()
            .filter(|&(_, &(h, at, dur, _))| h == host && now >= at && now < at + dur)
            .any(|(i, &(_, _, _, rate))| {
                self.storage_verdict(0xB17F_11B5, host, i as u64, op, attempt, rate)
            })
    }

    /// The seeded bit to flip in a corrupted read of `len_bits` bits
    /// (0 when the read is empty): a pure function of the storage seed
    /// and the (op, attempt) key, so sim and native corrupt the same bit
    /// of the same frame.
    pub fn corrupt_bit(&self, op: u64, attempt: u64, len_bits: u64) -> u64 {
        if len_bits == 0 {
            return 0;
        }
        let h = splitmix64(
            self.storage_seed
                ^ splitmix64(op.wrapping_mul(0xBF58_476D_1CE4_E5B9).wrapping_add(attempt))
                ^ 0xF11B_0B17_C044_0717,
        );
        h % len_bits
    }

    /// One seeded storage verdict: uniform in `[0, 1)` from the mixed
    /// (family, host, window, op, attempt) key, compared against `rate`.
    fn storage_verdict(
        &self,
        family: u64,
        host: HostId,
        window: u64,
        op: u64,
        attempt: u64,
        rate: f64,
    ) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let h = splitmix64(
            self.storage_seed
                ^ splitmix64(family.wrapping_add(0x9E37_79B9_7F4A_7C15))
                ^ splitmix64(
                    (host.0 as u64)
                        .wrapping_mul(0xD1B5_4A32_D192_ED03)
                        .wrapping_add(window),
                )
                ^ splitmix64(op.wrapping_mul(0xBF58_476D_1CE4_E5B9).wrapping_add(attempt)),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform in [0, 1)
        u < rate
    }

    /// Human-readable descriptions of every scheduled fault, for run
    /// reports.
    pub fn describe(&self) -> Vec<String> {
        let mut out = Vec::new();
        for &(h, at) in &self.crashes {
            out.push(format!("crash host{} at {:.3}s", h.0, at.as_secs_f64()));
        }
        for &(h, at, dur) in &self.stalls {
            out.push(format!(
                "stall host{} at {:.3}s for {:.3}s",
                h.0,
                at.as_secs_f64(),
                dur.as_secs_f64()
            ));
        }
        for &(h, at, dur, f) in &self.degrades {
            out.push(format!(
                "degrade host{} nic x{:.2} at {:.3}s for {:.3}s",
                h.0,
                f,
                at.as_secs_f64(),
                dur.as_secs_f64()
            ));
        }
        for &(h, at, dur, f) in &self.disk_degrades {
            out.push(format!(
                "degrade host{} disk x{:.2} at {:.3}s for {:.3}s",
                h.0,
                f,
                at.as_secs_f64(),
                dur.as_secs_f64()
            ));
        }
        for &(h, at, dur, rate, kind) in &self.disk_errors {
            out.push(format!(
                "disk {} errors host{} p={} at {:.3}s for {:.3}s seed={:#x}",
                kind.label(),
                h.0,
                rate,
                at.as_secs_f64(),
                dur.as_secs_f64(),
                self.storage_seed
            ));
        }
        for &(h, at, dur, rate) in &self.corrupt_reads {
            out.push(format!(
                "corrupt disk reads host{} p={} at {:.3}s for {:.3}s seed={:#x}",
                h.0,
                rate,
                at.as_secs_f64(),
                dur.as_secs_f64(),
                self.storage_seed
            ));
        }
        if self.drop_rate > 0.0 {
            out.push(format!(
                "drop messages p={} seed={:#x}",
                self.drop_rate, self.drop_seed
            ));
        }
        if self.delay_rate > 0.0 {
            out.push(format!(
                "delay messages p={} by {:.3}s seed={:#x}",
                self.delay_rate,
                self.delay_dur.as_secs_f64(),
                self.delay_seed
            ));
        }
        out
    }

    /// Spawn the driver processes the plan needs (one per NIC-degradation
    /// window; crashes, stalls, and drops are pure queries and need none).
    /// Every driver terminates at its window's end, so installing a plan
    /// never deadlocks or prolongs an otherwise-finished run beyond the
    /// last degradation window.
    pub fn install(&self, sim: &mut Simulation, topo: &Topology) {
        for (i, &(host, at, dur, factor)) in self.degrades.iter().enumerate() {
            let topo = topo.clone();
            sim.spawn(format!("fault-degrade-{i}"), move |env| {
                if at > env.now() {
                    env.delay(at - env.now());
                }
                let h = topo.host(host);
                h.nic_tx().set_degrade(factor);
                h.nic_rx().set_degrade(factor);
                env.delay(dur);
                h.nic_tx().set_degrade(1.0);
                h.nic_rx().set_degrade(1.0);
            });
        }
    }
}

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{ClusterSpec, HostSpec, TopologyBuilder};

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn death_queries_follow_schedule() {
        let plan = FaultPlan::new()
            .crash_host(HostId(1), t(100))
            .crash_host(HostId(1), t(50)); // earliest wins
        assert_eq!(plan.host_death(HostId(1)), Some(t(50)));
        assert_eq!(plan.host_death(HostId(0)), None);
        assert!(!plan.is_dead(HostId(1), t(49)));
        assert!(plan.is_dead(HostId(1), t(50)));
        assert!(!plan.detectably_dead(HostId(1), t(59), SimDuration::from_millis(10)));
        assert!(plan.detectably_dead(HostId(1), t(60), SimDuration::from_millis(10)));
        assert!(plan.has_crashes());
        assert!(!plan.is_empty());
    }

    #[test]
    fn stall_window_reports_end() {
        let plan = FaultPlan::new().stall_host(HostId(3), t(10), SimDuration::from_millis(5));
        assert_eq!(plan.stall_end(HostId(3), t(9)), None);
        assert_eq!(plan.stall_end(HostId(3), t(10)), Some(t(15)));
        assert_eq!(plan.stall_end(HostId(3), t(14)), Some(t(15)));
        assert_eq!(plan.stall_end(HostId(3), t(15)), None);
        assert_eq!(plan.stall_end(HostId(0), t(12)), None);
    }

    #[test]
    fn drops_are_seeded_and_deterministic() {
        let plan = FaultPlan::new().drop_messages(42, 0.25);
        let verdicts: Vec<bool> = (0..1000).map(|s| plan.should_drop(1, s, 0)).collect();
        let again: Vec<bool> = (0..1000).map(|s| plan.should_drop(1, s, 0)).collect();
        assert_eq!(verdicts, again, "same keys, same verdicts");
        let dropped = verdicts.iter().filter(|&&d| d).count();
        assert!(
            (150..350).contains(&dropped),
            "rate 0.25 over 1000: got {dropped}"
        );
        // A different attempt number re-rolls the verdict.
        assert!((0..1000).any(|s| plan.should_drop(1, s, 0) != plan.should_drop(1, s, 1)));
        // No drops configured -> never drops.
        assert!(!FaultPlan::new().should_drop(1, 2, 3));
    }

    #[test]
    fn delays_are_seeded_and_deterministic() {
        let plan = FaultPlan::new().delay_messages(7, 0.2, SimDuration::from_micros(250));
        let verdicts: Vec<Option<SimDuration>> =
            (0..1000).map(|s| plan.message_delay(3, s)).collect();
        let again: Vec<Option<SimDuration>> = (0..1000).map(|s| plan.message_delay(3, s)).collect();
        assert_eq!(verdicts, again, "same keys, same verdicts");
        let delayed = verdicts.iter().filter(|v| v.is_some()).count();
        assert!(
            (100..320).contains(&delayed),
            "rate 0.2 over 1000: got {delayed}"
        );
        assert!(verdicts
            .iter()
            .flatten()
            .all(|&d| d == SimDuration::from_micros(250)));
        assert!(FaultPlan::new().message_delay(1, 2).is_none());
        assert!(plan.has_delays());
        assert!(!plan.is_empty());
        assert!(!plan.has_degrades());
    }

    #[test]
    fn degrade_factor_tracks_windows() {
        let plan = FaultPlan::new()
            .degrade_nic(HostId(1), t(10), SimDuration::from_millis(10), 0.5)
            .degrade_nic(HostId(1), t(15), SimDuration::from_millis(10), 0.25);
        assert_eq!(plan.degrade_factor(HostId(1), t(9)), 1.0);
        assert_eq!(plan.degrade_factor(HostId(1), t(10)), 0.5);
        assert_eq!(
            plan.degrade_factor(HostId(1), t(16)),
            0.25,
            "strongest window wins"
        );
        assert_eq!(plan.degrade_factor(HostId(1), t(22)), 0.25);
        assert_eq!(plan.degrade_factor(HostId(1), t(25)), 1.0);
        assert_eq!(
            plan.degrade_factor(HostId(0), t(12)),
            1.0,
            "other hosts unaffected"
        );
    }

    #[test]
    fn disk_degrade_factor_tracks_windows() {
        let plan = FaultPlan::new()
            .degrade_disk(HostId(1), t(10), SimDuration::from_millis(10), 0.5)
            .degrade_disk(HostId(1), t(15), SimDuration::from_millis(10), 0.25);
        assert_eq!(plan.disk_degrade_factor(HostId(1), t(9)), 1.0);
        assert_eq!(plan.disk_degrade_factor(HostId(1), t(10)), 0.5);
        assert_eq!(
            plan.disk_degrade_factor(HostId(1), t(16)),
            0.25,
            "strongest window wins"
        );
        assert_eq!(plan.disk_degrade_factor(HostId(1), t(25)), 1.0);
        assert_eq!(plan.disk_degrade_factor(HostId(0), t(12)), 1.0);
        assert!(plan.has_disk_faults());
        assert!(!plan.is_empty());
        assert!(!plan.has_degrades(), "disk windows need no NIC driver");
    }

    #[test]
    fn disk_errors_are_seeded_windowed_and_rerolled_by_attempt() {
        let plan = FaultPlan::new().storage_seed(42).disk_error(
            HostId(2),
            t(0),
            SimDuration::from_millis(100),
            0.25,
            DiskFaultKind::Write,
        );
        let verdicts: Vec<bool> = (0..1000)
            .map(|op| plan.should_fail_disk(HostId(2), DiskFaultKind::Write, t(50), op, 0))
            .collect();
        let again: Vec<bool> = (0..1000)
            .map(|op| plan.should_fail_disk(HostId(2), DiskFaultKind::Write, t(50), op, 0))
            .collect();
        assert_eq!(verdicts, again, "same keys, same verdicts");
        let failed = verdicts.iter().filter(|&&d| d).count();
        assert!(
            (150..350).contains(&failed),
            "rate 0.25 over 1000: got {failed}"
        );
        // A retry re-rolls the verdict.
        assert!((0..1000).any(|op| {
            plan.should_fail_disk(HostId(2), DiskFaultKind::Write, t(50), op, 0)
                != plan.should_fail_disk(HostId(2), DiskFaultKind::Write, t(50), op, 1)
        }));
        // Outside the window, the wrong host, or the wrong kind: never.
        assert!((0..100).all(|op| {
            !plan.should_fail_disk(HostId(2), DiskFaultKind::Write, t(100), op, 0)
                && !plan.should_fail_disk(HostId(1), DiskFaultKind::Write, t(50), op, 0)
                && !plan.should_fail_disk(HostId(2), DiskFaultKind::Read, t(50), op, 0)
        }));
        // A ReadWrite window covers both operation kinds.
        let both = FaultPlan::new().disk_error(
            HostId(0),
            t(0),
            SimDuration::from_millis(10),
            1.0,
            DiskFaultKind::ReadWrite,
        );
        assert!(both.should_fail_disk(HostId(0), DiskFaultKind::Read, t(5), 1, 0));
        assert!(both.should_fail_disk(HostId(0), DiskFaultKind::Write, t(5), 1, 0));
    }

    #[test]
    fn corrupt_reads_are_seeded_and_pick_a_bit_in_range() {
        let plan = FaultPlan::new().storage_seed(7).corrupt_read(
            HostId(3),
            t(0),
            SimDuration::from_millis(100),
            0.2,
        );
        let verdicts: Vec<bool> = (0..1000)
            .map(|op| plan.should_corrupt_read(HostId(3), t(10), op, 0))
            .collect();
        let corrupted = verdicts.iter().filter(|&&d| d).count();
        assert!(
            (100..320).contains(&corrupted),
            "rate 0.2 over 1000: got {corrupted}"
        );
        assert!(
            !plan.should_corrupt_read(HostId(3), t(100), 1, 0),
            "window over"
        );
        assert!(
            !plan.should_corrupt_read(HostId(0), t(10), 1, 0),
            "other host"
        );
        for op in 0..100 {
            let bit = plan.corrupt_bit(op, 0, 4096);
            assert!(bit < 4096);
            assert_eq!(bit, plan.corrupt_bit(op, 0, 4096), "deterministic");
        }
        assert_eq!(plan.corrupt_bit(1, 0, 0), 0, "empty read");
        // Different ops spread across the frame.
        assert!(
            (0..100)
                .map(|op| plan.corrupt_bit(op, 0, 4096))
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 50
        );
    }

    #[test]
    fn describe_lists_every_fault() {
        let plan = FaultPlan::new()
            .crash_host(HostId(2), t(500))
            .stall_host(HostId(1), t(200), SimDuration::from_millis(100))
            .degrade_nic(HostId(0), t(0), SimDuration::from_millis(300), 0.25)
            .degrade_disk(HostId(3), t(0), SimDuration::from_millis(100), 0.5)
            .disk_error(
                HostId(3),
                t(0),
                SimDuration::from_millis(100),
                0.1,
                DiskFaultKind::Read,
            )
            .corrupt_read(HostId(3), t(0), SimDuration::from_millis(100), 0.05)
            .drop_messages(7, 0.01);
        let d = plan.describe();
        assert_eq!(d.len(), 7);
        assert!(d[0].contains("crash host2 at 0.500s"));
        assert!(d[1].contains("stall host1"));
        assert!(d[2].contains("degrade host0"));
        assert!(d[3].contains("degrade host3 disk"));
        assert!(d[4].contains("disk read errors host3"));
        assert!(d[5].contains("corrupt disk reads host3"));
        assert!(d[6].contains("drop messages"));
    }

    #[test]
    fn install_drives_degradation_window() {
        let mut b = TopologyBuilder::new();
        let c = b.add_cluster(ClusterSpec {
            name: "c".into(),
            nic_bandwidth_bps: 1000.0,
            nic_latency: SimDuration::ZERO,
        });
        let h0 = b.add_host(
            c,
            HostSpec {
                name: "h0".into(),
                cores: 1,
                speed: 1.0,
                mem_mb: 512,
                disks: 1,
                disk_bandwidth_bps: 1e6,
                disk_seek: SimDuration::ZERO,
            },
        );
        let h1 = b.add_host(
            c,
            HostSpec {
                name: "h1".into(),
                cores: 1,
                speed: 1.0,
                mem_mb: 512,
                disks: 1,
                disk_bandwidth_bps: 1e6,
                disk_seek: SimDuration::ZERO,
            },
        );
        let topo = b.build();
        let plan = FaultPlan::new().degrade_nic(h0, t(0), SimDuration::from_millis(2000), 0.5);
        let mut sim = Simulation::new();
        plan.install(&mut sim, &topo);
        let topo2 = topo.clone();
        sim.spawn("xfer", move |env| {
            env.delay(SimDuration::from_millis(1));
            // 500 B at 1000 B/s degraded x0.5 = 1.0s.
            let start = env.now();
            topo2.transfer(&env, h0, h1, 500);
            let took = (env.now() - start).as_secs_f64();
            assert!(
                (0.99..1.01).contains(&took),
                "degraded transfer took {took}"
            );
        });
        sim.run().unwrap();
        // Window over: bandwidth restored.
        assert_eq!(topo.host(h0).nic_tx().bandwidth_bps(), 1000.0);
    }
}
