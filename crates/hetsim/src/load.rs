//! Time-varying background load: the paper's third cause of heterogeneity
//! — "shared resources can result in varying resource availability".
//!
//! A [`LoadProfile`] is a schedule of `(hold duration, background jobs)`
//! steps; [`spawn_load_generator`] runs it against a host CPU as a
//! simulation process, so the competing load *changes while the pipeline
//! runs* (unlike the static `Cpu::set_bg_jobs`). Profiles can be built
//! explicitly, as square waves, or pseudo-randomly from a seed (a small
//! internal LCG keeps this crate dependency-free and runs deterministic).

use crate::engine::{Env, Simulation};
use crate::resources::Cpu;
use crate::time::SimDuration;

/// A schedule of background-job levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadProfile {
    /// `(hold, jobs)` steps applied in order.
    pub steps: Vec<(SimDuration, u32)>,
}

impl LoadProfile {
    /// Constant load.
    pub fn constant(jobs: u32) -> Self {
        LoadProfile {
            steps: vec![(SimDuration::from_secs(3600), jobs)],
        }
    }

    /// A square wave alternating between `low` and `high` every `period`.
    pub fn square(low: u32, high: u32, period: SimDuration, cycles: u32) -> Self {
        let mut steps = Vec::with_capacity(cycles as usize * 2);
        for _ in 0..cycles {
            steps.push((period, low));
            steps.push((period, high));
        }
        LoadProfile { steps }
    }

    /// A deterministic pseudo-random walk: `n_steps` steps of `step` each,
    /// with job counts in `0..=max_jobs`, derived from `seed`.
    pub fn random(seed: u64, max_jobs: u32, n_steps: u32, step: SimDuration) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let steps = (0..n_steps)
            .map(|_| (step, lcg() % (max_jobs + 1)))
            .collect();
        LoadProfile { steps }
    }

    /// Total scheduled duration.
    pub fn duration(&self) -> SimDuration {
        self.steps
            .iter()
            .fold(SimDuration::ZERO, |acc, &(d, _)| acc + d)
    }

    /// Peak job count.
    pub fn peak(&self) -> u32 {
        self.steps.iter().map(|&(_, j)| j).max().unwrap_or(0)
    }
}

/// Drive `profile` against `cpu` from the calling process, then restore
/// zero background load.
pub fn drive_load(env: &Env, cpu: &Cpu, profile: &LoadProfile) {
    for &(hold, jobs) in &profile.steps {
        cpu.set_bg_jobs(jobs);
        env.delay(hold);
    }
    cpu.set_bg_jobs(0);
}

/// Spawn a generator process applying `profile` to `cpu` (once; the host
/// returns to zero background jobs afterwards).
pub fn spawn_load_generator(
    sim: &mut Simulation,
    name: impl Into<String>,
    cpu: Cpu,
    profile: LoadProfile,
) {
    sim.spawn(name, move |env| {
        drive_load(&env, &cpu, &profile);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn square_wave_shape() {
        let p = LoadProfile::square(0, 8, SimDuration::from_millis(10), 3);
        assert_eq!(p.steps.len(), 6);
        assert_eq!(p.peak(), 8);
        assert_eq!(p.duration().as_nanos(), 60_000_000);
    }

    #[test]
    fn random_profile_is_deterministic_and_bounded() {
        let a = LoadProfile::random(7, 5, 20, SimDuration::from_millis(3));
        let b = LoadProfile::random(7, 5, 20, SimDuration::from_millis(3));
        assert_eq!(a, b);
        assert!(a.peak() <= 5);
        assert_ne!(
            a,
            LoadProfile::random(8, 5, 20, SimDuration::from_millis(3))
        );
        // Not constant (with overwhelming probability for this seed).
        let distinct: std::collections::HashSet<u32> = a.steps.iter().map(|&(_, j)| j).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn generator_dilates_compute_in_phases() {
        // Worker computes through a load spike: its second half slows.
        let mut sim = Simulation::new();
        let cpu = Cpu::new(1, 1.0);
        // 50ms calm, then a long storm of 9 jobs.
        let profile = LoadProfile {
            steps: vec![
                (SimDuration::from_millis(50), 0),
                (SimDuration::from_secs(2), 9),
            ],
        };
        spawn_load_generator(&mut sim, "storm", cpu.clone(), profile);
        let end: Arc<Mutex<f64>> = Arc::new(Mutex::new(0.0));
        let e2 = end.clone();
        let cpu2 = cpu.clone();
        sim.spawn("worker", move |env| {
            cpu2.compute(&env, SimDuration::from_millis(100));
            *e2.lock() = env.now().as_secs_f64();
        });
        sim.run().unwrap();
        let t = *end.lock();
        // ~50ms at full speed + remaining ~50ms of work at 1/10 speed
        // ≈ 550ms (quantized by the compute slice size).
        assert!(
            (0.4..0.7).contains(&t),
            "worker should finish mid-storm around 0.55s, got {t}"
        );
        // Load generator restored calm.
        assert_eq!(cpu.bg_jobs(), 0);
    }

    #[test]
    fn constant_profile_matches_static_setting() {
        let mut sim = Simulation::new();
        let cpu = Cpu::new(1, 1.0);
        let profile = LoadProfile::constant(3);
        spawn_load_generator(&mut sim, "bg", cpu.clone(), profile);
        let cpu2 = cpu.clone();
        sim.spawn("worker", move |env| {
            env.delay(SimDuration::from_millis(1)); // let the generator start
            cpu2.compute(&env, SimDuration::from_millis(100));
            // 4x dilation expected.
            let t = env.now().as_secs_f64();
            assert!((0.35..0.45).contains(&t), "{t}");
        });
        sim.run().unwrap();
    }
}
