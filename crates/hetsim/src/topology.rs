//! Cluster topology: hosts with CPUs and disks, NICs, and inter-cluster
//! backbone links.
//!
//! The network model is deliberately simple but captures what the paper's
//! experiments exercise: per-host NIC bandwidth (the switched-Ethernet
//! bottleneck), a shared backbone per ordered cluster pair, and cheap
//! loopback for co-located filters. A transfer holds every link on its
//! route for `bytes / min-bandwidth` (cut-through, bottleneck-limited) and
//! then pays the summed propagation latency.

use std::collections::HashMap;
use std::sync::Arc;

use crate::engine::Env;
use crate::resources::{Cpu, Disk, Link};
use crate::time::SimDuration;

/// Identifies a host within one [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// Identifies a cluster within one [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u32);

/// Static description of a host to be added to a topology.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Human-readable name, e.g. `"rogue3"`.
    pub name: String,
    /// Number of CPU cores.
    pub cores: u32,
    /// CPU speed relative to the reference core (Rogue's P3-650 = 1.0).
    pub speed: f64,
    /// Physical memory in MB (informational; not charged).
    pub mem_mb: u64,
    /// Number of local disks.
    pub disks: u32,
    /// Per-disk sequential bandwidth, bytes/second.
    pub disk_bandwidth_bps: f64,
    /// Per-request positioning overhead.
    pub disk_seek: SimDuration,
}

/// Static description of a cluster's interconnect.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Human-readable name, e.g. `"rogue"`.
    pub name: String,
    /// Per-host NIC bandwidth, bytes/second (switched: each host gets its
    /// own full-bandwidth port).
    pub nic_bandwidth_bps: f64,
    /// One-way propagation latency within the cluster.
    pub nic_latency: SimDuration,
}

/// A host instantiated in a topology.
pub struct Host {
    /// This host's id.
    pub id: HostId,
    /// Host name.
    pub name: String,
    /// Owning cluster.
    pub cluster: ClusterId,
    /// The host CPU (shared by all processes placed here).
    pub cpu: Cpu,
    /// Local disks.
    pub disks: Vec<Disk>,
    /// Physical memory in MB.
    pub mem_mb: u64,
    nic_tx: Link,
    nic_rx: Link,
}

impl Host {
    /// Outbound NIC link (fault injection adjusts its degradation factor).
    pub fn nic_tx(&self) -> &Link {
        &self.nic_tx
    }

    /// Inbound NIC link.
    pub fn nic_rx(&self) -> &Link {
        &self.nic_rx
    }
}

struct ClusterInfo {
    name: String,
}

/// The instantiated cluster collection. Cheap to clone (shared internals).
#[derive(Clone)]
pub struct Topology {
    inner: Arc<TopologyInner>,
}

struct TopologyInner {
    hosts: Vec<Host>,
    clusters: Vec<ClusterInfo>,
    /// Backbone link per ordered cluster pair (full duplex).
    backbones: HashMap<(ClusterId, ClusterId), Link>,
    /// Same-host "transfer" bandwidth (memcpy through shared memory).
    loopback_bps: f64,
}

/// Builder for [`Topology`].
pub struct TopologyBuilder {
    clusters: Vec<ClusterSpec>,
    hosts: Vec<(ClusterId, HostSpec)>,
    backbones: Vec<(ClusterId, ClusterId, f64, SimDuration)>,
    loopback_bps: f64,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// Start an empty topology.
    pub fn new() -> Self {
        TopologyBuilder {
            clusters: Vec::new(),
            hosts: Vec::new(),
            backbones: Vec::new(),
            loopback_bps: 1.0e9,
        }
    }

    /// Register a cluster; hosts are added to it with
    /// [`add_host`](Self::add_host).
    pub fn add_cluster(&mut self, spec: ClusterSpec) -> ClusterId {
        let id = ClusterId(self.clusters.len() as u32);
        self.clusters.push(spec);
        id
    }

    /// Register a host in `cluster`.
    pub fn add_host(&mut self, cluster: ClusterId, spec: HostSpec) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.hosts.push((cluster, spec));
        id
    }

    /// Connect two clusters with a full-duplex backbone of the given
    /// bandwidth and latency.
    pub fn connect_clusters(
        &mut self,
        a: ClusterId,
        b: ClusterId,
        bandwidth_bps: f64,
        latency: SimDuration,
    ) {
        self.backbones.push((a, b, bandwidth_bps, latency));
    }

    /// Override the same-host transfer bandwidth (default 1 GB/s).
    pub fn loopback_bandwidth(&mut self, bps: f64) {
        self.loopback_bps = bps;
    }

    /// Instantiate the topology.
    pub fn build(self) -> Topology {
        let clusters: Vec<ClusterInfo> = self
            .clusters
            .iter()
            .map(|c| ClusterInfo {
                name: c.name.clone(),
            })
            .collect();
        let mut hosts = Vec::with_capacity(self.hosts.len());
        for (idx, (cluster, spec)) in self.hosts.into_iter().enumerate() {
            let cspec = &self.clusters[cluster.0 as usize];
            let id = HostId(idx as u32);
            let disks = (0..spec.disks)
                .map(|_| Disk::new(spec.disk_bandwidth_bps, spec.disk_seek))
                .collect();
            hosts.push(Host {
                id,
                name: spec.name.clone(),
                cluster,
                cpu: Cpu::new(spec.cores, spec.speed),
                disks,
                mem_mb: spec.mem_mb,
                nic_tx: Link::new(
                    format!("{}:tx", spec.name),
                    cspec.nic_bandwidth_bps,
                    cspec.nic_latency,
                ),
                nic_rx: Link::new(
                    format!("{}:rx", spec.name),
                    cspec.nic_bandwidth_bps,
                    cspec.nic_latency,
                ),
            });
        }
        let mut backbones = HashMap::new();
        for (a, b, bw, lat) in self.backbones {
            backbones.insert((a, b), Link::new(format!("bb:{}->{}", a.0, b.0), bw, lat));
            backbones.insert((b, a), Link::new(format!("bb:{}->{}", b.0, a.0), bw, lat));
        }
        Topology {
            inner: Arc::new(TopologyInner {
                hosts,
                clusters,
                backbones,
                loopback_bps: self.loopback_bps,
            }),
        }
    }
}

impl Topology {
    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.inner.hosts
    }

    /// Look up one host.
    pub fn host(&self, id: HostId) -> &Host {
        &self.inner.hosts[id.0 as usize]
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.inner.hosts.len()
    }

    /// True when the topology has no hosts.
    pub fn is_empty(&self) -> bool {
        self.inner.hosts.is_empty()
    }

    /// Cluster name for diagnostics.
    pub fn cluster_name(&self, id: ClusterId) -> &str {
        &self.inner.clusters[id.0 as usize].name
    }

    /// Hosts belonging to `cluster`, in id order.
    pub fn hosts_in(&self, cluster: ClusterId) -> Vec<HostId> {
        self.inner
            .hosts
            .iter()
            .filter(|h| h.cluster == cluster)
            .map(|h| h.id)
            .collect()
    }

    /// Move `bytes` from `from` to `to`, charging the NICs and (for
    /// cross-cluster routes) the backbone. Same-host transfers pay only a
    /// cheap memcpy cost. Blocks the calling process for the full transfer.
    pub fn transfer(&self, env: &Env, from: HostId, to: HostId, bytes: u64) {
        if from == to {
            let d = SimDuration::from_secs_f64(bytes as f64 / self.inner.loopback_bps);
            env.delay(d);
            return;
        }
        let src = &self.inner.hosts[from.0 as usize];
        let dst = &self.inner.hosts[to.0 as usize];
        if src.cluster == dst.cluster {
            route_transfer(env, &[&src.nic_tx, &dst.nic_rx], bytes);
        } else {
            let bb = self
                .inner
                .backbones
                .get(&(src.cluster, dst.cluster))
                .unwrap_or_else(|| {
                    panic!(
                        "no backbone between clusters {} and {}",
                        self.cluster_name(src.cluster),
                        self.cluster_name(dst.cluster)
                    )
                });
            route_transfer(env, &[&src.nic_tx, bb, &dst.nic_rx], bytes);
        }
    }

    /// Lower bound on per-byte transfer cost between two hosts, in seconds
    /// per byte (used by schedulers that reason about placement).
    pub fn path_cost_per_byte(&self, from: HostId, to: HostId) -> f64 {
        if from == to {
            return 1.0 / self.inner.loopback_bps;
        }
        let src = &self.inner.hosts[from.0 as usize];
        let dst = &self.inner.hosts[to.0 as usize];
        let mut min_bw = src.nic_tx.bandwidth_bps().min(dst.nic_rx.bandwidth_bps());
        if src.cluster != dst.cluster {
            if let Some(bb) = self.inner.backbones.get(&(src.cluster, dst.cluster)) {
                min_bw = min_bw.min(bb.bandwidth_bps());
            }
        }
        1.0 / min_bw
    }

    /// NIC byte counters for `host`: `(tx_bytes, rx_bytes)`.
    pub fn nic_bytes(&self, host: HostId) -> (u64, u64) {
        let h = &self.inner.hosts[host.0 as usize];
        (h.nic_tx.bytes(), h.nic_rx.bytes())
    }

    /// Per-host resource utilization over a run of length `elapsed`.
    pub fn utilization(&self, elapsed: crate::SimDuration) -> Vec<HostUtilization> {
        let total = elapsed.as_secs_f64().max(1e-12);
        self.inner
            .hosts
            .iter()
            .map(|h| {
                let cores = h.cpu.cores() as f64;
                HostUtilization {
                    host: h.id,
                    name: h.name.clone(),
                    cpu_busy: (h.cpu.busy_time().as_secs_f64() / (total * cores)).min(1.0),
                    disk_busy: h
                        .disks
                        .iter()
                        .map(|d| d.busy_time().as_secs_f64() / total)
                        .fold(0.0, f64::max)
                        .min(1.0),
                    nic_tx_busy: (h.nic_tx.busy_time().as_secs_f64() / total).min(1.0),
                    nic_rx_busy: (h.nic_rx.busy_time().as_secs_f64() / total).min(1.0),
                    tx_bytes: h.nic_tx.bytes(),
                    rx_bytes: h.nic_rx.bytes(),
                }
            })
            .collect()
    }
}

/// One host's resource utilization over a run (fractions in `[0, 1]`).
#[derive(Debug, Clone)]
pub struct HostUtilization {
    /// Which host.
    pub host: HostId,
    /// Host name.
    pub name: String,
    /// Fraction of total core-time spent computing.
    pub cpu_busy: f64,
    /// Busiest local disk's busy fraction.
    pub disk_busy: f64,
    /// Outbound NIC occupancy.
    pub nic_tx_busy: f64,
    /// Inbound NIC occupancy.
    pub nic_rx_busy: f64,
    /// Bytes sent.
    pub tx_bytes: u64,
    /// Bytes received.
    pub rx_bytes: u64,
}

impl std::fmt::Display for HostUtilization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>10}: cpu {:>5.1}%  disk {:>5.1}%  net tx {:>5.1}% ({:.1} MB)  rx {:>5.1}% ({:.1} MB)",
            self.name,
            self.cpu_busy * 100.0,
            self.disk_busy * 100.0,
            self.nic_tx_busy * 100.0,
            self.tx_bytes as f64 / 1e6,
            self.nic_rx_busy * 100.0,
            self.rx_bytes as f64 / 1e6,
        )
    }
}

/// Hold every link on the route (tx → backbone → rx), pay the bottleneck
/// serialization once, then the summed latency. Lock order follows route
/// order, and routes always order links tx < backbone < rx, so waits point
/// forward and cannot cycle.
fn route_transfer(env: &Env, route: &[&Link], bytes: u64) {
    debug_assert!(!route.is_empty());
    // Acquire in route order.
    for link in route {
        link.occupy_begin(env);
    }
    let min_bw = route
        .iter()
        .map(|l| l.bandwidth_bps())
        .fold(f64::INFINITY, f64::min);
    let serialize = SimDuration::from_secs_f64(bytes as f64 / min_bw);
    env.delay(serialize);
    let mut latency = SimDuration::ZERO;
    for link in route.iter().rev() {
        link.occupy_end(env, bytes, serialize);
        latency += link.latency();
    }
    env.delay(latency);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;

    fn two_cluster_topo() -> (Topology, HostId, HostId, HostId) {
        let mut b = TopologyBuilder::new();
        let fast = b.add_cluster(ClusterSpec {
            name: "fast".into(),
            nic_bandwidth_bps: 100.0e6,
            nic_latency: SimDuration::from_micros(50),
        });
        let slow = b.add_cluster(ClusterSpec {
            name: "slow".into(),
            nic_bandwidth_bps: 10.0e6,
            nic_latency: SimDuration::from_micros(100),
        });
        let h0 = b.add_host(fast, spec("f0"));
        let h1 = b.add_host(fast, spec("f1"));
        let h2 = b.add_host(slow, spec("s0"));
        b.connect_clusters(fast, slow, 100.0e6, SimDuration::from_micros(200));
        (b.build(), h0, h1, h2)
    }

    fn spec(name: &str) -> HostSpec {
        HostSpec {
            name: name.into(),
            cores: 1,
            speed: 1.0,
            mem_mb: 512,
            disks: 1,
            disk_bandwidth_bps: 30.0e6,
            disk_seek: SimDuration::from_millis(5),
        }
    }

    #[test]
    fn same_host_transfer_is_cheap() {
        let (topo, h0, h1, _) = two_cluster_topo();
        let mut sim = Simulation::new();
        let t = topo.clone();
        sim.spawn("x", move |env| {
            t.transfer(&env, h0, h0, 1_000_000);
            let local = env.now();
            t.transfer(&env, h0, h1, 1_000_000);
            let remote = env.now() - local;
            assert!(remote.as_nanos() > local.as_nanos() * 5);
        });
        sim.run().unwrap();
    }

    #[test]
    fn intra_cluster_uses_nic_bandwidth() {
        let (topo, h0, h1, _) = two_cluster_topo();
        let mut sim = Simulation::new();
        let t = topo.clone();
        sim.spawn("x", move |env| {
            t.transfer(&env, h0, h1, 10_000_000); // 10 MB at 100 MB/s = 0.1s
            let secs = env.now().as_secs_f64();
            assert!((0.1..0.11).contains(&secs), "{secs}");
        });
        sim.run().unwrap();
    }

    #[test]
    fn cross_cluster_bottleneck_is_slow_nic() {
        let (topo, h0, _, h2) = two_cluster_topo();
        let mut sim = Simulation::new();
        let t = topo.clone();
        sim.spawn("x", move |env| {
            t.transfer(&env, h0, h2, 10_000_000); // bottleneck 10 MB/s = 1s
            let secs = env.now().as_secs_f64();
            assert!((1.0..1.01).contains(&secs), "{secs}");
        });
        sim.run().unwrap();
    }

    #[test]
    fn nic_contention_serializes() {
        let (topo, h0, h1, _) = two_cluster_topo();
        let mut sim = Simulation::new();
        let ends: Arc<parking_lot::Mutex<Vec<f64>>> = Arc::new(parking_lot::Mutex::new(vec![]));
        for i in 0..2 {
            let t = topo.clone();
            let ends = ends.clone();
            sim.spawn(format!("x{i}"), move |env| {
                t.transfer(&env, h0, h1, 10_000_000);
                ends.lock().push(env.now().as_secs_f64());
            });
        }
        sim.run().unwrap();
        let v = ends.lock().clone();
        // Sharing h0's tx NIC: second finishes ~2x later.
        assert!(v[1] > 0.19, "{v:?}");
    }

    #[test]
    fn path_cost_reflects_bottleneck() {
        let (topo, h0, h1, h2) = two_cluster_topo();
        assert!(topo.path_cost_per_byte(h0, h0) < topo.path_cost_per_byte(h0, h1));
        assert!(topo.path_cost_per_byte(h0, h1) < topo.path_cost_per_byte(h0, h2));
    }

    #[test]
    fn utilization_reflects_activity() {
        use crate::engine::Simulation;
        let (topo, h0, h1, _) = two_cluster_topo();
        let mut sim = Simulation::new();
        let t = topo.clone();
        sim.spawn("worker", move |env| {
            t.host(h0).cpu.compute(&env, SimDuration::from_secs(1));
            t.host(h0).disks[0].read(&env, 30_000_000);
            t.transfer(&env, h0, h1, 10_000_000);
        });
        let stats = sim.run().unwrap();
        let u = topo.utilization(stats.end_time - crate::SimTime::ZERO);
        assert!(u[0].cpu_busy > 0.3, "h0 computed: {}", u[0].cpu_busy);
        assert!(u[0].disk_busy > 0.3, "h0 read disk: {}", u[0].disk_busy);
        assert!(u[0].nic_tx_busy > 0.0 && u[1].nic_rx_busy > 0.0);
        assert_eq!(u[0].tx_bytes, 10_000_000);
        assert_eq!(u[1].rx_bytes, 10_000_000);
        assert_eq!(u[2].cpu_busy, 0.0, "idle host stays idle");
        // Display formatting is total and non-empty.
        assert!(format!("{}", u[0]).contains("cpu"));
    }

    #[test]
    fn hosts_in_filters_by_cluster() {
        let (topo, h0, h1, h2) = two_cluster_topo();
        assert_eq!(topo.hosts_in(ClusterId(0)), vec![h0, h1]);
        assert_eq!(topo.hosts_in(ClusterId(1)), vec![h2]);
    }
}
