//! Topology presets modeling the University of Maryland testbed the paper
//! ran on (Section 4):
//!
//! * **Red** — 8 × 2-processor Pentium II 450 MHz, 256 MB, 1 × 18 GB SCSI
//!   disk, Gigabit Ethernet.
//! * **Deathstar** — 1 × 8-processor Pentium III 550 MHz, 4 GB, connected
//!   to the other clusters via Fast Ethernet.
//! * **Blue** — 8 × 2-processor Pentium III 550 MHz, 1 GB, 2 × 18 GB SCSI
//!   disks, Gigabit Ethernet.
//! * **Rogue** — 8 × 1-processor Pentium III 650 MHz, 128 MB, 2 × 75 GB IDE
//!   disks, Switched Fast Ethernet internally, Gigabit uplink.
//!
//! Speed factors are relative to the Rogue P3-650 core (1.0). The absolute
//! values are estimates (the paper reports none); what matters for
//! reproducing the result *shapes* is the ordering and rough ratios.

use crate::time::SimDuration;
use crate::topology::{ClusterId, ClusterSpec, HostId, HostSpec, Topology, TopologyBuilder};

/// Bytes/second of Gigabit Ethernet after protocol overhead.
pub const GIGABIT_BPS: f64 = 100.0e6;
/// Bytes/second of switched Fast Ethernet (100 Mbit) after overhead.
pub const FAST_ETHERNET_BPS: f64 = 11.5e6;

/// Relative speed of a Pentium II 450 MHz core.
pub const RED_SPEED: f64 = 0.55;
/// Relative speed of a Pentium III 550 MHz core.
pub const BLUE_SPEED: f64 = 0.85;
/// Relative speed of a Pentium III 650 MHz core (reference).
pub const ROGUE_SPEED: f64 = 1.0;

/// ~2001-era SCSI disk sequential bandwidth.
pub const SCSI_BPS: f64 = 30.0e6;
/// ~2001-era IDE disk sequential bandwidth.
pub const IDE_BPS: f64 = 25.0e6;

/// The full UMD testbed with handles to each cluster's hosts.
pub struct UmdTestbed {
    /// The instantiated topology.
    pub topology: Topology,
    /// Red cluster id and its 8 hosts.
    pub red: (ClusterId, Vec<HostId>),
    /// Blue cluster id and its 8 hosts.
    pub blue: (ClusterId, Vec<HostId>),
    /// Rogue cluster id and its 8 hosts.
    pub rogue: (ClusterId, Vec<HostId>),
    /// Deathstar cluster id and its single 8-way host.
    pub deathstar: (ClusterId, HostId),
}

fn red_host(i: usize) -> HostSpec {
    HostSpec {
        name: format!("red{i}"),
        cores: 2,
        speed: RED_SPEED,
        mem_mb: 256,
        disks: 1,
        disk_bandwidth_bps: SCSI_BPS,
        disk_seek: SimDuration::from_millis(6),
    }
}

fn blue_host(i: usize) -> HostSpec {
    HostSpec {
        name: format!("blue{i}"),
        cores: 2,
        speed: BLUE_SPEED,
        mem_mb: 1024,
        disks: 2,
        disk_bandwidth_bps: SCSI_BPS,
        disk_seek: SimDuration::from_millis(6),
    }
}

fn rogue_host(i: usize) -> HostSpec {
    HostSpec {
        name: format!("rogue{i}"),
        cores: 1,
        speed: ROGUE_SPEED,
        mem_mb: 128,
        disks: 2,
        disk_bandwidth_bps: IDE_BPS,
        disk_seek: SimDuration::from_millis(9),
    }
}

fn deathstar_host() -> HostSpec {
    HostSpec {
        name: "deathstar".into(),
        cores: 8,
        speed: BLUE_SPEED,
        mem_mb: 4096,
        disks: 2,
        disk_bandwidth_bps: SCSI_BPS,
        disk_seek: SimDuration::from_millis(6),
    }
}

/// Build the complete UMD testbed (25 hosts across 4 clusters).
pub fn umd_testbed() -> UmdTestbed {
    let mut b = TopologyBuilder::new();
    let red = b.add_cluster(ClusterSpec {
        name: "red".into(),
        nic_bandwidth_bps: GIGABIT_BPS,
        nic_latency: SimDuration::from_micros(60),
    });
    let blue = b.add_cluster(ClusterSpec {
        name: "blue".into(),
        nic_bandwidth_bps: GIGABIT_BPS,
        nic_latency: SimDuration::from_micros(60),
    });
    let rogue = b.add_cluster(ClusterSpec {
        name: "rogue".into(),
        nic_bandwidth_bps: FAST_ETHERNET_BPS,
        nic_latency: SimDuration::from_micros(90),
    });
    let deathstar = b.add_cluster(ClusterSpec {
        name: "deathstar".into(),
        nic_bandwidth_bps: FAST_ETHERNET_BPS,
        nic_latency: SimDuration::from_micros(90),
    });

    let red_hosts: Vec<HostId> = (0..8).map(|i| b.add_host(red, red_host(i))).collect();
    let blue_hosts: Vec<HostId> = (0..8).map(|i| b.add_host(blue, blue_host(i))).collect();
    let rogue_hosts: Vec<HostId> = (0..8).map(|i| b.add_host(rogue, rogue_host(i))).collect();
    let ds_host = b.add_host(deathstar, deathstar_host());

    // Red, Blue, Rogue interconnected via Gigabit; Deathstar via Fast
    // Ethernet to everything.
    let gig = |b: &mut TopologyBuilder, a, c| {
        b.connect_clusters(a, c, GIGABIT_BPS, SimDuration::from_micros(120));
    };
    gig(&mut b, red, blue);
    gig(&mut b, red, rogue);
    gig(&mut b, blue, rogue);
    for c in [red, blue, rogue] {
        b.connect_clusters(
            deathstar,
            c,
            FAST_ETHERNET_BPS,
            SimDuration::from_micros(150),
        );
    }

    UmdTestbed {
        topology: b.build(),
        red: (red, red_hosts),
        blue: (blue, blue_hosts),
        rogue: (rogue, rogue_hosts),
        deathstar: (deathstar, ds_host),
    }
}

/// A standalone homogeneous Rogue-like cluster of `n` nodes (the setting of
/// the paper's Figure 4 homogeneity experiment).
pub fn rogue_cluster(n: usize) -> (Topology, Vec<HostId>) {
    let mut b = TopologyBuilder::new();
    let rogue = b.add_cluster(ClusterSpec {
        name: "rogue".into(),
        nic_bandwidth_bps: FAST_ETHERNET_BPS,
        nic_latency: SimDuration::from_micros(90),
    });
    let hosts = (0..n).map(|i| b.add_host(rogue, rogue_host(i))).collect();
    (b.build(), hosts)
}

/// Half-Rogue / half-Blue mix used by the paper's heterogeneity experiment
/// (Figure 5): returns `(topology, rogue_hosts, blue_hosts)` with
/// `n_each` hosts per cluster.
pub fn rogue_blue_mix(n_each: usize) -> (Topology, Vec<HostId>, Vec<HostId>) {
    let mut b = TopologyBuilder::new();
    let rogue = b.add_cluster(ClusterSpec {
        name: "rogue".into(),
        nic_bandwidth_bps: FAST_ETHERNET_BPS,
        nic_latency: SimDuration::from_micros(90),
    });
    let blue = b.add_cluster(ClusterSpec {
        name: "blue".into(),
        nic_bandwidth_bps: GIGABIT_BPS,
        nic_latency: SimDuration::from_micros(60),
    });
    b.connect_clusters(rogue, blue, GIGABIT_BPS, SimDuration::from_micros(120));
    let rogues = (0..n_each)
        .map(|i| b.add_host(rogue, rogue_host(i)))
        .collect();
    let blues = (0..n_each)
        .map(|i| b.add_host(blue, blue_host(i)))
        .collect();
    (b.build(), rogues, blues)
}

/// `n_red` 2-way Red data nodes plus the 8-way Deathstar compute node over
/// its slow Fast-Ethernet uplink (the setting of the paper's Table 5).
pub fn red_with_deathstar(n_red: usize) -> (Topology, Vec<HostId>, HostId) {
    let mut b = TopologyBuilder::new();
    let red = b.add_cluster(ClusterSpec {
        name: "red".into(),
        nic_bandwidth_bps: GIGABIT_BPS,
        nic_latency: SimDuration::from_micros(60),
    });
    let deathstar = b.add_cluster(ClusterSpec {
        name: "deathstar".into(),
        nic_bandwidth_bps: FAST_ETHERNET_BPS,
        nic_latency: SimDuration::from_micros(90),
    });
    b.connect_clusters(
        red,
        deathstar,
        FAST_ETHERNET_BPS,
        SimDuration::from_micros(150),
    );
    let reds = (0..n_red).map(|i| b.add_host(red, red_host(i))).collect();
    let ds = b.add_host(deathstar, deathstar_host());
    (b.build(), reds, ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_has_25_hosts() {
        let tb = umd_testbed();
        assert_eq!(tb.topology.len(), 25);
        assert_eq!(tb.red.1.len(), 8);
        assert_eq!(tb.blue.1.len(), 8);
        assert_eq!(tb.rogue.1.len(), 8);
    }

    #[test]
    fn rogue_is_reference_speed_single_core() {
        let tb = umd_testbed();
        let h = tb.topology.host(tb.rogue.1[0]);
        assert_eq!(h.cpu.cores(), 1);
        assert_eq!(h.cpu.speed(), 1.0);
        assert_eq!(h.disks.len(), 2);
    }

    #[test]
    fn deathstar_is_8_way() {
        let tb = umd_testbed();
        let h = tb.topology.host(tb.deathstar.1);
        assert_eq!(h.cpu.cores(), 8);
    }

    #[test]
    fn blue_is_faster_than_red() {
        const { assert!(BLUE_SPEED > RED_SPEED) };
        const { assert!(ROGUE_SPEED > BLUE_SPEED) };
    }

    #[test]
    fn mix_builder_shapes() {
        let (topo, rogues, blues) = rogue_blue_mix(4);
        assert_eq!(topo.len(), 8);
        assert_eq!(rogues.len(), 4);
        assert_eq!(blues.len(), 4);
        // Cross-cluster path exists.
        assert!(topo.path_cost_per_byte(rogues[0], blues[0]).is_finite());
    }

    #[test]
    fn red_deathstar_uplink_is_slow() {
        let (topo, reds, ds) = red_with_deathstar(2);
        let intra = topo.path_cost_per_byte(reds[0], reds[1]);
        let uplink = topo.path_cost_per_byte(reds[0], ds);
        assert!(uplink > intra * 5.0, "uplink {uplink} intra {intra}");
    }
}
