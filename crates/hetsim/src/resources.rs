//! Cost-charging resources: CPUs with processor-sharing contention, disks,
//! and network links.
//!
//! Costs are expressed as *work* ([`SimDuration`] of dedicated time on a
//! reference-speed core, or bytes moved) and converted to elapsed virtual
//! time using each resource's parameters. All resources accumulate busy-time
//! and byte counters for the experiment harnesses.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::Env;
use crate::sync::Semaphore;
use crate::time::SimDuration;

/// A host CPU modeled as `cores` identical cores under processor sharing.
///
/// A computation of `w` work-seconds on a host with relative speed `s`
/// elapses `w / s * max(1, (active + bg_jobs) / cores)` virtual seconds,
/// re-evaluated every quantum so that load changes mid-computation take
/// effect. `bg_jobs` models the paper's equal-priority background user
/// processes: on Linux, `b` CPU-bound background jobs sharing `c` cores with
/// `a` application threads give each thread roughly `c / (a + b)` of a core.
#[derive(Clone)]
pub struct Cpu {
    inner: Arc<Mutex<CpuState>>,
}

struct CpuState {
    cores: u32,
    speed: f64,
    bg_jobs: u32,
    active: u32,
    busy: SimDuration,
    work_done: SimDuration,
}

/// How finely a computation is sliced so contention changes get picked up.
const CPU_QUANTA: u64 = 16;

impl Cpu {
    /// A CPU with `cores` cores running at `speed` times the reference
    /// speed. `speed` must be positive.
    pub fn new(cores: u32, speed: f64) -> Self {
        assert!(cores >= 1, "a host needs at least one core");
        assert!(speed > 0.0, "speed factor must be positive");
        Cpu {
            inner: Arc::new(Mutex::new(CpuState {
                cores,
                speed,
                bg_jobs: 0,
                active: 0,
                busy: SimDuration::ZERO,
                work_done: SimDuration::ZERO,
            })),
        }
    }

    /// Set the number of equal-priority CPU-bound background jobs.
    pub fn set_bg_jobs(&self, jobs: u32) {
        self.inner.lock().bg_jobs = jobs;
    }

    /// Current number of background jobs.
    pub fn bg_jobs(&self) -> u32 {
        self.inner.lock().bg_jobs
    }

    /// Number of cores.
    pub fn cores(&self) -> u32 {
        self.inner.lock().cores
    }

    /// Relative speed factor.
    pub fn speed(&self) -> f64 {
        self.inner.lock().speed
    }

    /// Execute `work` seconds of reference-speed computation, blocking the
    /// calling process for the contention- and speed-adjusted elapsed time.
    pub fn compute(&self, env: &Env, work: SimDuration) {
        if work.is_zero() {
            return;
        }
        {
            let mut st = self.inner.lock();
            st.active += 1;
            st.work_done += work;
        }
        let quantum = std::cmp::max(work.as_nanos() / CPU_QUANTA, 1);
        let mut remaining = work.as_nanos();
        while remaining > 0 {
            let slice = remaining.min(quantum);
            let factor = {
                let st = self.inner.lock();
                let demand = (st.active + st.bg_jobs) as f64 / st.cores as f64;
                demand.max(1.0) / st.speed
            };
            let elapsed = SimDuration::from_nanos(slice).mul_f64(factor);
            env.delay(elapsed);
            self.inner.lock().busy += elapsed;
            remaining -= slice;
        }
        self.inner.lock().active -= 1;
    }

    /// Total virtual time application threads spent occupying this CPU.
    pub fn busy_time(&self) -> SimDuration {
        self.inner.lock().busy
    }

    /// Total reference-speed work charged to this CPU.
    pub fn work_done(&self) -> SimDuration {
        self.inner.lock().work_done
    }
}

/// A disk with FIFO request service: each read pays a fixed positioning
/// overhead plus bytes / bandwidth, one request at a time.
#[derive(Clone)]
pub struct Disk {
    sem: Semaphore,
    inner: Arc<Mutex<DiskState>>,
}

struct DiskState {
    bandwidth_bps: f64,
    seek: SimDuration,
    bytes_read: u64,
    reads: u64,
    bytes_written: u64,
    writes: u64,
    busy: SimDuration,
}

impl Disk {
    /// A disk serving `bandwidth_bps` bytes per second with `seek`
    /// positioning overhead per request.
    pub fn new(bandwidth_bps: f64, seek: SimDuration) -> Self {
        assert!(bandwidth_bps > 0.0, "disk bandwidth must be positive");
        Disk {
            sem: Semaphore::new(1),
            inner: Arc::new(Mutex::new(DiskState {
                bandwidth_bps,
                seek,
                bytes_read: 0,
                reads: 0,
                bytes_written: 0,
                writes: 0,
                busy: SimDuration::ZERO,
            })),
        }
    }

    /// Read `bytes` from the disk, blocking for queueing + service time
    /// (full positioning overhead — use for the first read of a file).
    pub fn read(&self, env: &Env, bytes: u64) {
        self.read_inner(env, bytes, 1.0);
    }

    /// Sequential continuation read: the head is already positioned, so
    /// only a small fraction of the positioning overhead (rotational
    /// settling, track switches) is charged.
    pub fn read_seq(&self, env: &Env, bytes: u64) {
        self.read_inner(env, bytes, 0.125);
    }

    fn read_inner(&self, env: &Env, bytes: u64, seek_frac: f64) {
        self.sem.acquire(env);
        let service = {
            let st = self.inner.lock();
            st.seek.mul_f64(seek_frac) + SimDuration::from_secs_f64(bytes as f64 / st.bandwidth_bps)
        };
        env.delay(service);
        {
            let mut st = self.inner.lock();
            st.bytes_read += bytes;
            st.reads += 1;
            st.busy += service;
        }
        self.sem.release(env);
    }

    /// Write `bytes` to the disk, blocking for queueing + service time
    /// (full positioning overhead). Used by the out-of-core spill path:
    /// a spilled buffer pays the same seek + transfer model as a read.
    pub fn write(&self, env: &Env, bytes: u64) {
        self.write_inner(env, bytes, 1.0);
    }

    /// Sequential continuation write (the head is already positioned —
    /// e.g. consecutive slots of a spill ring).
    pub fn write_seq(&self, env: &Env, bytes: u64) {
        self.write_inner(env, bytes, 0.125);
    }

    fn write_inner(&self, env: &Env, bytes: u64, seek_frac: f64) {
        self.sem.acquire(env);
        let service = {
            let st = self.inner.lock();
            st.seek.mul_f64(seek_frac) + SimDuration::from_secs_f64(bytes as f64 / st.bandwidth_bps)
        };
        env.delay(service);
        {
            let mut st = self.inner.lock();
            st.bytes_written += bytes;
            st.writes += 1;
            st.busy += service;
        }
        self.sem.release(env);
    }

    /// Total bytes served.
    pub fn bytes_read(&self) -> u64 {
        self.inner.lock().bytes_read
    }

    /// Number of read requests served.
    pub fn reads(&self) -> u64 {
        self.inner.lock().reads
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.inner.lock().bytes_written
    }

    /// Number of write requests served.
    pub fn writes(&self) -> u64 {
        self.inner.lock().writes
    }

    /// Accumulated service time.
    pub fn busy_time(&self) -> SimDuration {
        self.inner.lock().busy
    }
}

/// A unidirectional network link with store-and-forward service: a transfer
/// occupies the link for `bytes / bandwidth`, then the message experiences
/// propagation `latency` off the link (pipelined with the next transfer).
#[derive(Clone)]
pub struct Link {
    sem: Semaphore,
    inner: Arc<Mutex<LinkState>>,
}

struct LinkState {
    name: String,
    bandwidth_bps: f64,
    latency: SimDuration,
    /// Multiplier in `(0, 1]` applied to the configured bandwidth; lowered
    /// by fault injection to model link degradation, restored afterwards.
    degrade: f64,
    bytes: u64,
    transfers: u64,
    busy: SimDuration,
}

impl Link {
    /// A link carrying `bandwidth_bps` bytes/second with `latency`
    /// propagation delay.
    pub fn new(name: impl Into<String>, bandwidth_bps: f64, latency: SimDuration) -> Self {
        assert!(bandwidth_bps > 0.0, "link bandwidth must be positive");
        Link {
            sem: Semaphore::new(1),
            inner: Arc::new(Mutex::new(LinkState {
                name: name.into(),
                bandwidth_bps,
                latency,
                degrade: 1.0,
                bytes: 0,
                transfers: 0,
                busy: SimDuration::ZERO,
            })),
        }
    }

    /// Move `bytes` across the link, blocking for queueing, serialization,
    /// and propagation.
    pub fn transfer(&self, env: &Env, bytes: u64) {
        self.sem.acquire(env);
        let (serialize, latency) = {
            let st = self.inner.lock();
            (
                SimDuration::from_secs_f64(bytes as f64 / (st.bandwidth_bps * st.degrade)),
                st.latency,
            )
        };
        env.delay(serialize);
        {
            let mut st = self.inner.lock();
            st.bytes += bytes;
            st.transfers += 1;
            st.busy += serialize;
        }
        self.sem.release(env);
        env.delay(latency);
    }

    /// Begin occupying the link as part of a multi-link route (see
    /// `Topology::transfer`). Pair with [`occupy_end`](Self::occupy_end).
    pub fn occupy_begin(&self, env: &Env) {
        self.sem.acquire(env);
    }

    /// Finish a route occupancy started with
    /// [`occupy_begin`](Self::occupy_begin), recording `bytes` moved during
    /// `held` of occupancy and releasing the link.
    pub fn occupy_end(&self, env: &Env, bytes: u64, held: SimDuration) {
        {
            let mut st = self.inner.lock();
            st.bytes += bytes;
            st.transfers += 1;
            st.busy += held;
        }
        self.sem.release(env);
    }

    /// Configured propagation latency.
    pub fn latency(&self) -> SimDuration {
        self.inner.lock().latency
    }

    /// Link label (diagnostics).
    pub fn name(&self) -> String {
        self.inner.lock().name.clone()
    }

    /// Total bytes carried.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().bytes
    }

    /// Number of transfers carried.
    pub fn transfers(&self) -> u64 {
        self.inner.lock().transfers
    }

    /// Accumulated serialization (occupancy) time.
    pub fn busy_time(&self) -> SimDuration {
        self.inner.lock().busy
    }

    /// Effective bandwidth in bytes/second (configured bandwidth times the
    /// current degradation factor). Route planning and in-flight transfers
    /// read this, so fault-injected degradation takes effect immediately.
    pub fn bandwidth_bps(&self) -> f64 {
        let st = self.inner.lock();
        st.bandwidth_bps * st.degrade
    }

    /// Set the degradation factor (`1.0` = healthy). Values are clamped to
    /// a small positive floor so bandwidth never reaches zero.
    pub fn set_degrade(&self, factor: f64) {
        self.inner.lock().degrade = factor.clamp(1e-6, 1.0);
    }

    /// Current degradation factor.
    pub fn degrade(&self) -> f64 {
        self.inner.lock().degrade
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;

    #[test]
    fn cpu_uncontended_runs_at_speed() {
        let mut sim = Simulation::new();
        let cpu = Cpu::new(1, 2.0); // 2x reference speed
        sim.spawn("t", move |env| {
            cpu.compute(&env, SimDuration::from_secs(2));
            assert_eq!(env.now().as_secs_f64(), 1.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn cpu_contention_slows_down() {
        let mut sim = Simulation::new();
        let cpu = Cpu::new(1, 1.0);
        let ends: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2 {
            let cpu = cpu.clone();
            let ends = ends.clone();
            sim.spawn(format!("t{i}"), move |env| {
                cpu.compute(&env, SimDuration::from_secs(1));
                ends.lock().push(env.now().as_secs_f64());
            });
        }
        sim.run().unwrap();
        // Two threads sharing one core: ~2s each rather than 1s.
        for &t in ends.lock().iter() {
            assert!((1.9..=2.1).contains(&t), "end {t}");
        }
    }

    #[test]
    fn cpu_multicore_no_contention() {
        let mut sim = Simulation::new();
        let cpu = Cpu::new(2, 1.0);
        let ends: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2 {
            let cpu = cpu.clone();
            let ends = ends.clone();
            sim.spawn(format!("t{i}"), move |env| {
                cpu.compute(&env, SimDuration::from_secs(1));
                ends.lock().push(env.now().as_secs_f64());
            });
        }
        sim.run().unwrap();
        for &t in ends.lock().iter() {
            assert!((0.99..=1.01).contains(&t), "end {t}");
        }
    }

    #[test]
    fn cpu_background_jobs_steal_time() {
        let mut sim = Simulation::new();
        let cpu = Cpu::new(1, 1.0);
        cpu.set_bg_jobs(3);
        sim.spawn("t", move |env| {
            cpu.compute(&env, SimDuration::from_secs(1));
            // 1 app thread + 3 bg jobs on 1 core -> 4x dilation.
            assert!((3.9..=4.1).contains(&env.now().as_secs_f64()));
        });
        sim.run().unwrap();
    }

    #[test]
    fn disk_serializes_requests() {
        let mut sim = Simulation::new();
        let disk = Disk::new(100.0, SimDuration::from_millis(10)); // 100 B/s
        let ends: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2 {
            let disk = disk.clone();
            let ends = ends.clone();
            sim.spawn(format!("r{i}"), move |env| {
                disk.read(&env, 100); // 1s + 10ms seek
                ends.lock().push(env.now().as_nanos() / 1_000_000);
            });
        }
        sim.run().unwrap();
        assert_eq!(*ends.lock(), vec![1010, 2020]);
        assert_eq!(disk.bytes_read(), 200);
        assert_eq!(disk.reads(), 2);
    }

    #[test]
    fn disk_writes_share_the_queue_with_reads() {
        let mut sim = Simulation::new();
        let disk = Disk::new(100.0, SimDuration::from_millis(10)); // 100 B/s
        let d2 = disk.clone();
        sim.spawn("w", move |env| {
            d2.write(&env, 100); // 1s + 10ms seek
            assert_eq!(env.now().as_nanos() / 1_000_000, 1010);
            d2.write_seq(&env, 100); // 1s + 1.25ms settling
            assert_eq!(env.now().as_nanos() / 1_000_000, 2011);
            d2.read(&env, 50); // 0.5s + 10ms
            assert_eq!(env.now().as_nanos() / 1_000_000, 2521);
        });
        sim.run().unwrap();
        assert_eq!(disk.bytes_written(), 200);
        assert_eq!(disk.writes(), 2);
        assert_eq!(disk.bytes_read(), 50);
        assert_eq!(disk.reads(), 1);
    }

    #[test]
    fn link_charges_serialization_plus_latency() {
        let mut sim = Simulation::new();
        let link = Link::new("l", 1000.0, SimDuration::from_millis(5));
        let l2 = link.clone();
        sim.spawn("x", move |env| {
            l2.transfer(&env, 500); // 0.5s + 5ms
            assert_eq!(env.now().as_nanos(), 505_000_000);
        });
        sim.run().unwrap();
        assert_eq!(link.bytes(), 500);
        assert_eq!(link.transfers(), 1);
    }

    #[test]
    fn link_degradation_slows_transfers() {
        let mut sim = Simulation::new();
        let link = Link::new("l", 1000.0, SimDuration::ZERO);
        let l2 = link.clone();
        sim.spawn("x", move |env| {
            l2.transfer(&env, 500); // 0.5s healthy
            assert_eq!(env.now().as_nanos(), 500_000_000);
            l2.set_degrade(0.5);
            assert_eq!(l2.bandwidth_bps(), 500.0);
            l2.transfer(&env, 500); // 1.0s at half bandwidth
            assert_eq!(env.now().as_nanos(), 1_500_000_000);
            l2.set_degrade(1.0);
            assert_eq!(l2.bandwidth_bps(), 1000.0);
        });
        sim.run().unwrap();
    }

    #[test]
    fn link_latency_is_pipelined() {
        // Two back-to-back transfers: second waits for serialization of the
        // first, not its propagation.
        let mut sim = Simulation::new();
        let link = Link::new("l", 1000.0, SimDuration::from_millis(100));
        let ends: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2 {
            let link = link.clone();
            let ends = ends.clone();
            sim.spawn(format!("x{i}"), move |env| {
                link.transfer(&env, 1000); // 1s serialize + 0.1s latency
                ends.lock().push(env.now().as_nanos() / 1_000_000);
            });
        }
        sim.run().unwrap();
        assert_eq!(*ends.lock(), vec![1100, 2100]);
    }
}
