//! Execution tracing: an opt-in recorder that collects a timeline of
//! annotated spans from simulation processes, for debugging pipelines and
//! producing Gantt-style activity reports.
//!
//! Processes call [`Trace::begin`]/[`Trace::end`] around interesting operations (the
//! DataCutter runtime is instrumented this way when a trace is attached);
//! after the run, [`Trace::timeline`] yields the ordered spans and
//! [`Trace::busy_by_label`] aggregates them.
//!
//! ```
//! use hetsim::{Simulation, SimDuration};
//! use hetsim::trace::Trace;
//!
//! let mut sim = Simulation::new();
//! let trace = Trace::new();
//! let t = trace.clone();
//! sim.spawn("worker", move |env| {
//!     let s = t.begin(&env, "compute", "phase-1");
//!     env.delay(SimDuration::from_millis(3));
//!     t.end(&env, s);
//! });
//! sim.run().unwrap();
//! let spans = trace.timeline();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].label, "compute");
//! assert_eq!(spans[0].duration().as_nanos(), 3_000_000);
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::Env;
use crate::time::{SimDuration, SimTime};

/// One recorded activity span.
#[derive(Debug, Clone)]
pub struct Span {
    /// Recording process's name is not tracked (processes are app-level);
    /// `label` categorizes the activity ("compute", "disk", "send", ...).
    pub label: String,
    /// Free-form detail ("chunk 17", "E->Ra buffer", ...).
    pub detail: String,
    /// Span start, virtual time.
    pub start: SimTime,
    /// Span end, virtual time.
    pub end: SimTime,
}

impl Span {
    /// Length of the span.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Handle for an open span (returned by [`Trace::begin`]).
#[derive(Debug)]
pub struct OpenSpan {
    label: String,
    detail: String,
    start: SimTime,
}

/// A shared, append-only trace recorder. Cheap to clone. Bounded: beyond
/// `capacity` spans, new spans are counted but dropped (the run never
/// fails because tracing was left on).
#[derive(Clone)]
pub struct Trace {
    inner: Arc<Mutex<TraceInner>>,
}

struct TraceInner {
    spans: Vec<Span>,
    capacity: usize,
    dropped: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// A recorder with the default capacity (1M spans).
    pub fn new() -> Self {
        Self::with_capacity(1 << 20)
    }

    /// A recorder bounded at `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            inner: Arc::new(Mutex::new(TraceInner {
                spans: Vec::new(),
                capacity,
                dropped: 0,
            })),
        }
    }

    /// Open a span at the current virtual time.
    pub fn begin(
        &self,
        env: &Env,
        label: impl Into<String>,
        detail: impl Into<String>,
    ) -> OpenSpan {
        self.begin_at(env.now(), label, detail)
    }

    /// Open a span at an explicit timestamp. Lets recorders outside the
    /// simulation (e.g. a wall-clock executor mapping real elapsed time
    /// onto the [`SimTime`] axis) use the same trace machinery.
    pub fn begin_at(
        &self,
        now: SimTime,
        label: impl Into<String>,
        detail: impl Into<String>,
    ) -> OpenSpan {
        OpenSpan {
            label: label.into(),
            detail: detail.into(),
            start: now,
        }
    }

    /// Close a span at the current virtual time and record it.
    pub fn end(&self, env: &Env, open: OpenSpan) {
        self.end_at(env.now(), open);
    }

    /// Close a span at an explicit timestamp and record it (the
    /// counterpart of [`Trace::begin_at`]).
    pub fn end_at(&self, now: SimTime, open: OpenSpan) {
        let span = Span {
            label: open.label,
            detail: open.detail,
            start: open.start,
            end: now,
        };
        let mut t = self.inner.lock();
        if t.spans.len() < t.capacity {
            t.spans.push(span);
        } else {
            t.dropped += 1;
        }
    }

    /// Record an instantaneous marker.
    pub fn mark(&self, env: &Env, label: impl Into<String>, detail: impl Into<String>) {
        let open = self.begin(env, label, detail);
        self.end(env, open);
    }

    /// All spans, ordered by start time.
    pub fn timeline(&self) -> Vec<Span> {
        let mut v = self.inner.lock().spans.clone();
        v.sort_by_key(|s| (s.start, s.end));
        v
    }

    /// Total recorded time per label, descending.
    pub fn busy_by_label(&self) -> Vec<(String, SimDuration)> {
        let mut map: std::collections::HashMap<String, SimDuration> =
            std::collections::HashMap::new();
        for s in self.inner.lock().spans.iter() {
            *map.entry(s.label.clone()).or_insert(SimDuration::ZERO) += s.duration();
        }
        let mut v: Vec<_> = map.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Number of spans recorded / dropped.
    pub fn counts(&self) -> (usize, u64) {
        let t = self.inner.lock();
        (t.spans.len(), t.dropped)
    }

    /// Render a simple text timeline (one line per span), for debugging.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in self.timeline() {
            out.push_str(&format!(
                "{:>12.6} .. {:>12.6}  {:<10} {}\n",
                s.start.as_secs_f64(),
                s.end.as_secs_f64(),
                s.label,
                s.detail
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;

    #[test]
    fn spans_record_virtual_time() {
        let mut sim = Simulation::new();
        let trace = Trace::new();
        let t = trace.clone();
        sim.spawn("p", move |env| {
            env.delay(SimDuration::from_millis(5));
            let s = t.begin(&env, "work", "step A");
            env.delay(SimDuration::from_millis(10));
            t.end(&env, s);
            t.mark(&env, "event", "done");
        });
        sim.run().unwrap();
        let spans = trace.timeline();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start.as_nanos(), 5_000_000);
        assert_eq!(spans[0].duration().as_nanos(), 10_000_000);
        assert_eq!(spans[1].duration(), SimDuration::ZERO);
        assert!(trace.render().contains("step A"));
    }

    #[test]
    fn busy_by_label_aggregates() {
        let mut sim = Simulation::new();
        let trace = Trace::new();
        for i in 0..3u64 {
            let t = trace.clone();
            sim.spawn(format!("p{i}"), move |env| {
                let s = t.begin(&env, "compute", "");
                env.delay(SimDuration::from_millis(i + 1));
                t.end(&env, s);
                let s = t.begin(&env, "io", "");
                env.delay(SimDuration::from_millis(1));
                t.end(&env, s);
            });
        }
        sim.run().unwrap();
        let busy = trace.busy_by_label();
        assert_eq!(busy[0].0, "compute");
        assert_eq!(busy[0].1.as_nanos(), 6_000_000);
        assert_eq!(busy[1].0, "io");
        assert_eq!(busy[1].1.as_nanos(), 3_000_000);
    }

    #[test]
    fn capacity_bound_drops_quietly() {
        let mut sim = Simulation::new();
        let trace = Trace::with_capacity(2);
        let t = trace.clone();
        sim.spawn("p", move |env| {
            for i in 0..5 {
                t.mark(&env, "m", format!("{i}"));
            }
        });
        sim.run().unwrap();
        assert_eq!(trace.counts(), (2, 3));
    }

    #[test]
    fn timeline_is_sorted_across_processes() {
        let mut sim = Simulation::new();
        let trace = Trace::new();
        for (name, offset) in [("late", 9u64), ("early", 1u64)] {
            let t = trace.clone();
            sim.spawn(name, move |env| {
                env.delay(SimDuration::from_millis(offset));
                t.mark(&env, name, "");
            });
        }
        sim.run().unwrap();
        let spans = trace.timeline();
        assert_eq!(spans[0].label, "early");
        assert_eq!(spans[1].label, "late");
    }
}
