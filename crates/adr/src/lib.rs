//! # adr — the Active Data Repository baseline
//!
//! A reproduction of the comparator system in the paper's Figures 4–5:
//! the Active Data Repository (ADR) [Chang et al., Ferreira et al.], a
//! "highly parallel framework ... designed to efficiently support parallel
//! applications that perform generalized reduction operations on a
//! homogeneous parallel computer or cluster".
//!
//! Faithful to the paper's characterization:
//!
//! * **SPMD with static partitioning** — each node processes exactly the
//!   chunks stored on its local disks; no work ever moves between nodes
//!   (the "key weakness ... the impact of static partitioning on load
//!   balance").
//! * **Tuned overlap** — per node, an I/O process prefetches chunks ahead
//!   of the compute process ("an optimal number of active asynchronous
//!   disk I/O calls"), so disk time hides behind computation.
//! * **Accumulator-based** — each node renders into a local z-buffer
//!   accumulator (the paper uses the Z-buffer algorithm for ADR "since
//!   Z-buffer better matches the programming model of ADR"), then
//!   accumulators are combined in a merge phase at the end.
//! * **No per-buffer stream overheads** — unlike the component framework,
//!   ADR moves no framing or acknowledgment traffic during processing.

#![warn(missing_docs)]

use std::sync::Arc;

use dcapp::SharedConfig;
use hetsim::{Env, SimDuration, SimError, SimTime, Simulation, Topology};
use isosurf::{Image, ZBuffer, BACKGROUND, EMPTY_DEPTH, ZBUF_ENTRY_WIRE_BYTES};
use parking_lot::Mutex;
use volume::RectGrid;

/// Prefetch depth of the per-node asynchronous I/O pipeline.
const IO_DEPTH: usize = 4;

/// Per-node statistics from an ADR run.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Chunks processed.
    pub chunks: u64,
    /// Triangles extracted.
    pub triangles: u64,
    /// Pixels generated.
    pub pixels: u64,
    /// Virtual time the compute process finished local rendering.
    pub local_done: SimDuration,
}

/// Result of one ADR unit of work.
pub struct AdrResult {
    /// End-to-end virtual time.
    pub elapsed: SimDuration,
    /// The rendered image.
    pub image: Image,
    /// Per-node statistics, indexed like `cfg.storage_hosts`.
    pub nodes: Vec<NodeStats>,
}

/// Execute one rendering (one timestep) under the ADR model on `topo`.
/// The nodes are `cfg.storage_hosts`; the final image is assembled on the
/// first node.
pub fn run_adr(topo: &Topology, cfg: &SharedConfig) -> Result<AdrResult, SimError> {
    assert!(!cfg.storage_hosts.is_empty(), "ADR needs at least one node");
    let mut sim = Simulation::new();
    let waker = sim.waker();
    let n = cfg.storage_hosts.len();
    let merge_host = cfg.storage_hosts[0];

    let stats: Vec<Arc<Mutex<NodeStats>>> = (0..n)
        .map(|_| Arc::new(Mutex::new(NodeStats::default())))
        .collect();
    let image_slot: Arc<Mutex<Option<Image>>> = Arc::new(Mutex::new(None));

    // Accumulator inboxes for the tree reduction: in round `r`, node
    // `i + 2^r` ships its accumulator to node `i` (for `i % 2^(r+1) == 0`),
    // which folds it — the standard tuned parallel reduction, log2(n)
    // rounds with pairwise transfers in parallel.
    let mut inbox_txs = Vec::with_capacity(n);
    let mut inbox_rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = hetsim::channel::<ZBuffer>(waker.clone(), 1);
        inbox_txs.push(tx);
        inbox_rxs.push(Some(rx));
    }

    for (i, &host) in cfg.storage_hosts.iter().enumerate() {
        // I/O process: prefetch local chunks ahead of the compute process.
        let (io_tx, io_rx) =
            hetsim::channel::<((u32, u32, u32), RectGrid)>(waker.clone(), IO_DEPTH);
        let cfg2 = cfg.clone();
        let topo2 = topo.clone();
        sim.spawn(format!("adr-io{i}"), move |env: Env| {
            let h = topo2.host(host);
            let selected = cfg2.selected_chunks();
            'files: for (file, disk) in cfg2.files_for_node(i) {
                let mut sequential = false;
                for &chunk in cfg2.dataset.chunks_in_file(file) {
                    if !selected.contains(&chunk) {
                        sequential = false;
                        continue;
                    }
                    let bytes = cfg2.dataset.chunk_bytes(chunk);
                    let d = &h.disks[disk as usize % h.disks.len()];
                    if sequential {
                        d.read_seq(&env, bytes);
                    } else {
                        d.read(&env, bytes);
                    }
                    sequential = true;
                    let info = cfg2.dataset.chunk_info(chunk);
                    let grid = cfg2.dataset.read_chunk(cfg2.species, cfg2.timestep, chunk);
                    if io_tx.send(&env, (info.cell_origin, grid)).is_err() {
                        break 'files;
                    }
                }
            }
        });

        // Compute process: extract + raster into the local accumulator,
        // then join the tree reduction.
        let cfg2 = cfg.clone();
        let topo2 = topo.clone();
        let stats2 = stats[i].clone();
        let my_inbox = inbox_rxs[i].take().expect("inbox taken once");
        let all_tx = inbox_txs.clone();
        let hosts: Vec<hetsim::HostId> = cfg.storage_hosts.clone();
        let image_slot2 = image_slot.clone();
        sim.spawn(format!("adr-node{i}"), move |env: Env| {
            let cpu = topo2.host(host).cpu.clone();
            let proj = cfg2.camera.projector();
            let (w, h) = (cfg2.camera.width, cfg2.camera.height);
            let mut zb = ZBuffer::new(w, h);
            let mut tris = Vec::new();
            while let Some((origin, grid)) = io_rx.recv(&env) {
                cpu.compute(&env, cfg2.cost.read_cost(12 + grid.dims.byte_size()));
                tris.clear();
                let ex = isosurf::extract(&grid, origin, cfg2.iso, &mut tris);
                cpu.compute(&env, cfg2.cost.extract_cost(ex.cells, tris.len() as u64));
                let mut pixels = 0u64;
                for t in &tris {
                    if let Some(p) =
                        isosurf::raster_triangle(&proj, w, h, &cfg2.material, t, |x, y, d, rgb| {
                            zb.plot(x, y, d, rgb);
                        })
                    {
                        pixels += p;
                    }
                }
                cpu.compute(&env, cfg2.cost.raster_cost(tris.len() as u64, pixels));
                let mut s = stats2.lock();
                s.chunks += 1;
                s.triangles += tris.len() as u64;
                s.pixels += pixels;
            }
            stats2.lock().local_done = env.now() - SimTime::ZERO;

            // Tree reduction of accumulators: pairwise, log2(n) rounds.
            let nn = hosts.len();
            let mut step = 1usize;
            while step < nn {
                if i % (2 * step) == 0 {
                    let partner = i + step;
                    if partner < nn {
                        let other = my_inbox.recv(&env).expect("partner sends accumulator");
                        let entries = other.depth.len() as u64;
                        for k in 0..other.depth.len() {
                            if other.depth[k] != EMPTY_DEPTH && other.depth[k] < zb.depth[k] {
                                zb.depth[k] = other.depth[k];
                                zb.color[k] = other.color[k];
                            }
                        }
                        cpu.compute(&env, cfg2.cost.merge_cost(entries));
                    }
                } else {
                    // Sender: ship the whole (dense) accumulator and leave.
                    let dst = i - step;
                    let bytes = zb.depth.len() as u64 * ZBUF_ENTRY_WIRE_BYTES;
                    topo2.transfer(&env, host, hosts[dst], bytes);
                    let _ = all_tx[dst].send(&env, zb);
                    return;
                }
                step *= 2;
            }
            debug_assert_eq!(i, 0);
            let _ = merge_host;
            *image_slot2.lock() = Some(zb.to_image(BACKGROUND));
        });
    }
    drop(inbox_txs);
    drop(inbox_rxs);

    let run = sim.run()?;
    let image = image_slot.lock().take().expect("merge produced an image");
    Ok(AdrResult {
        elapsed: run.end_time - SimTime::ZERO,
        image,
        nodes: stats.iter().map(|s| s.lock().clone()).collect(),
    })
}

/// Run `timesteps` consecutive timesteps (fresh simulation each, like the
/// paper's cache-cleared runs).
pub fn run_adr_timesteps(
    topo: &Topology,
    cfg: &SharedConfig,
    timesteps: std::ops::Range<u32>,
) -> Result<Vec<AdrResult>, SimError> {
    let mut out = Vec::new();
    for t in timesteps {
        let mut c = dcapp::clone_config(cfg);
        c.timestep = t;
        out.push(run_adr(topo, &Arc::new(c))?);
    }
    Ok(out)
}

/// Average elapsed seconds of a result set.
pub fn avg_elapsed_secs(results: &[AdrResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(|r| r.elapsed.as_secs_f64()).sum::<f64>() / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcapp::AppConfig;
    use hetsim::presets::rogue_cluster;
    use volume::{Dataset, Dims};

    fn setup(nodes: usize) -> (Topology, SharedConfig) {
        let (topo, hosts) = rogue_cluster(nodes);
        let ds = Dataset::generate(Dims::new(25, 25, 25), (2, 2, 2), 8, 11);
        let cfg = AppConfig::new(ds, hosts, 2, 96, 96);
        (topo, Arc::new(cfg))
    }

    #[test]
    fn adr_matches_reference_image() {
        for nodes in [1usize, 2, 4] {
            let (topo, cfg) = setup(nodes);
            let r = run_adr(&topo, &cfg).unwrap();
            let reference = dcapp::reference_image(&cfg);
            assert_eq!(r.image.diff_pixels(&reference), 0, "{nodes} nodes");
        }
    }

    #[test]
    fn adr_scales_with_nodes() {
        let (topo1, cfg1) = setup(1);
        let (topo4, cfg4) = setup(4);
        let t1 = run_adr(&topo1, &cfg1).unwrap().elapsed;
        let t4 = run_adr(&topo4, &cfg4).unwrap().elapsed;
        assert!(
            t4.as_secs_f64() < t1.as_secs_f64() * 0.6,
            "4 nodes ({t4}) should be well under 1 node ({t1})"
        );
    }

    #[test]
    fn adr_static_partition_suffers_under_load() {
        // Load up half the nodes; ADR cannot shift work, so the run is
        // dominated by the loaded nodes. Inflate compute costs so the run
        // is CPU-bound (at full experiment scale it is; the unit-test
        // dataset alone would be seek-dominated).
        let compute_heavy = |(topo, cfg): (Topology, SharedConfig)| {
            let mut c = dcapp::clone_config(&cfg);
            c.cost.extract_per_cell *= 100.0;
            c.cost.raster_per_pixel *= 100.0;
            c.cost.raster_per_tri *= 100.0;
            (topo, Arc::new(c))
        };
        let (topo, cfg) = compute_heavy(setup(4));
        let base = run_adr(&topo, &cfg).unwrap().elapsed;
        let (topo_l, cfg_l) = compute_heavy(setup(4));
        for &h in &cfg_l.storage_hosts[..2] {
            topo_l.host(h).cpu.set_bg_jobs(4);
        }
        let loaded = run_adr(&topo_l, &cfg_l).unwrap().elapsed;
        assert!(
            loaded.as_secs_f64() > base.as_secs_f64() * 2.0,
            "loaded {loaded} vs base {base}"
        );
    }

    #[test]
    fn node_stats_cover_all_chunks() {
        let (topo, cfg) = setup(2);
        let r = run_adr(&topo, &cfg).unwrap();
        let total: u64 = r.nodes.iter().map(|n| n.chunks).sum();
        assert_eq!(total, 8);
        assert!(r.nodes.iter().all(|n| n.triangles > 0));
    }

    #[test]
    fn timesteps_run_independently() {
        let (topo, cfg) = setup(2);
        let rs = run_adr_timesteps(&topo, &cfg, 0..3).unwrap();
        assert_eq!(rs.len(), 3);
        assert!(avg_elapsed_secs(&rs) > 0.0);
    }
}
